//! *N*-ary reflected Gray-code sequences `Q_r` (Definition 3 of the paper).
//!
//! `Q_1 = (0, 1, …, N-1)` and `Q_r = CON{ [u]Q_{r-1} | u = 0, …, N-1 }`,
//! where `[u]` prefixes every element of `Q_{r-1}` with `u` if `u` is even,
//! and every element of the *reversed* sequence `R(Q_{r-1})` if `u` is odd.
//!
//! Two consecutive elements of `Q_r` differ in exactly one symbol position,
//! and in that position by exactly one (unit Hamming distance under the
//! paper's `D(s,z) = Σ |s_i - z_i|` metric), so consecutive elements have
//! Hamming weights of opposite parity.
//!
//! Digits are stored least-significant-dimension first: `digits[i]` is the
//! paper's symbol `x_{i+1}`; the Gray recursion splits on the *most*
//! significant digit `digits[r-1] = x_r`.

use crate::radix::pow;

/// The label at position `m` of the `N`-ary Gray-code sequence `Q_r`.
///
/// Returns the digits least-significant first. `O(r)` time.
///
/// # Panics
///
/// Panics (debug) if `m ≥ n^r`.
#[must_use]
pub fn gray_unrank(n: usize, r: usize, m: u64) -> Vec<usize> {
    let mut out = vec![0usize; r];
    gray_unrank_into(n, m, &mut out);
    out
}

/// As [`gray_unrank`], writing into a caller-provided buffer of length `r`.
pub fn gray_unrank_into(n: usize, m: u64, out: &mut [usize]) {
    let r = out.len();
    debug_assert!(m < pow(n, r), "Gray rank out of range");
    let mut m = m;
    for i in (0..r).rev() {
        let p = pow(n, i);
        let u = (m / p) as usize;
        out[i] = u;
        m %= p;
        if u % 2 == 1 {
            // Odd prefix digit: the remaining suffix is traversed reversed.
            m = p - 1 - m;
        }
    }
}

/// The position of label `digits` (least-significant first) within `Q_r`.
///
/// Inverse of [`gray_unrank`]. `O(r)` time.
#[must_use]
pub fn gray_rank(n: usize, digits: &[usize]) -> u64 {
    // Build bottom-up: rank within Q_1 is the digit itself; prefixing with an
    // odd digit reflects the accumulated suffix rank.
    let mut acc: u64 = 0;
    for (i, &d) in digits.iter().enumerate() {
        debug_assert!(d < n);
        let p = pow(n, i);
        let inner = if d % 2 == 1 { p - 1 - acc } else { acc };
        acc = d as u64 * p + inner;
    }
    acc
}

/// Advance `digits` (least-significant first) to the next element of `Q_r`
/// in place, returning the index of the digit that changed, or `None` if
/// `digits` was the last element.
///
/// Amortized `O(1)` per call over a full traversal; worst case `O(r)`.
pub fn gray_successor(n: usize, digits: &mut [usize]) -> Option<usize> {
    // In the reflected N-ary Gray code the successor changes exactly one
    // digit by ±1: the lowest digit that can move. Digit i moves "up" when
    // the parity of the digits strictly above it is even, "down" otherwise.
    let total: u8 = digits.iter().fold(0u8, |a, &d| a ^ (d % 2) as u8);
    // Parity of digits[0..=i], maintained incrementally.
    let mut prefix_incl = 0u8;
    for (i, d) in digits.iter_mut().enumerate() {
        prefix_incl ^= (*d % 2) as u8;
        let parity_above = total ^ prefix_incl;
        let up = parity_above == 0;
        if up && *d + 1 < n {
            *d += 1;
            return Some(i);
        }
        if !up && *d > 0 {
            *d -= 1;
            return Some(i);
        }
        // This digit is pinned at its extreme for the current direction;
        // move on to the next more significant digit.
    }
    None
}

/// Iterator over the elements of `Q_r` in sequence order.
///
/// Yields each label as a fresh `Vec<usize>` (least-significant first). For
/// allocation-free traversal use [`gray_successor`] directly.
#[derive(Debug, Clone)]
pub struct GrayIter {
    n: usize,
    current: Option<Vec<usize>>,
}

impl GrayIter {
    /// Iterate over `Q_r` for the given radix `n` and length `r`.
    #[must_use]
    pub fn new(n: usize, r: usize) -> Self {
        GrayIter {
            n,
            current: Some(vec![0; r]),
        }
    }
}

impl Iterator for GrayIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let cur = self.current.take()?;
        let mut next = cur.clone();
        if gray_successor(self.n, &mut next).is_some() {
            self.current = Some(next);
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamming::{hamming_distance, hamming_weight};

    /// The paper's example for N = 3, r = 2:
    /// `Q_2 = {00, 01, 02, 12, 11, 10, 20, 21, 22}` (labels written x2 x1).
    #[test]
    fn paper_example_q2_ternary() {
        let expect: [[usize; 2]; 9] = [
            [0, 0],
            [0, 1],
            [0, 2],
            [1, 2],
            [1, 1],
            [1, 0],
            [2, 0],
            [2, 1],
            [2, 2],
        ];
        for (m, e) in expect.iter().enumerate() {
            let got = gray_unrank(3, 2, m as u64);
            // e is written x2 x1 (paper order); ours is least significant first.
            assert_eq!(got, vec![e[1], e[0]], "position {m}");
        }
    }

    #[test]
    fn rank_unrank_roundtrip() {
        for n in 2..=5 {
            for r in 1..=4 {
                let total = pow(n, r);
                for m in 0..total {
                    let d = gray_unrank(n, r, m);
                    assert_eq!(gray_rank(n, &d), m, "n={n} r={r} m={m}");
                }
            }
        }
    }

    #[test]
    fn consecutive_elements_have_unit_distance() {
        for n in 2..=5 {
            for r in 1..=4 {
                let total = pow(n, r);
                let mut prev = gray_unrank(n, r, 0);
                for m in 1..total {
                    let cur = gray_unrank(n, r, m);
                    assert_eq!(
                        hamming_distance(&prev, &cur),
                        1,
                        "n={n} r={r} m={m}: {prev:?} -> {cur:?}"
                    );
                    prev = cur;
                }
            }
        }
    }

    #[test]
    fn consecutive_weights_alternate_parity() {
        for n in 2..=4 {
            for r in 1..=4 {
                let total = pow(n, r);
                for m in 0..total {
                    let w = hamming_weight(&gray_unrank(n, r, m));
                    assert_eq!(w % 2, m % 2, "n={n} r={r} m={m}");
                }
            }
        }
    }

    #[test]
    fn successor_agrees_with_unrank() {
        for n in 2..=5 {
            for r in 1..=4 {
                let total = pow(n, r);
                let mut cur = gray_unrank(n, r, 0);
                for m in 1..total {
                    let changed = gray_successor(n, &mut cur);
                    assert!(changed.is_some());
                    assert_eq!(cur, gray_unrank(n, r, m), "n={n} r={r} m={m}");
                }
                assert!(gray_successor(n, &mut cur).is_none(), "n={n} r={r}");
            }
        }
    }

    #[test]
    fn iterator_visits_every_label_once() {
        let all: Vec<_> = GrayIter::new(3, 3).collect();
        assert_eq!(all.len(), 27);
        let mut sorted: Vec<_> = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 27, "labels must be distinct");
    }

    #[test]
    fn binary_gray_matches_classic_formula() {
        // For N = 2, the reflected Gray code is the classic m ^ (m >> 1).
        for r in 1..=10 {
            for m in 0..pow(2, r) {
                let d = gray_unrank(2, r, m);
                let val: u64 = d.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
                assert_eq!(val, m ^ (m >> 1), "r={r} m={m}");
            }
        }
    }
}
