//! Plain (non-Gray) mixed-radix arithmetic on node labels.
//!
//! A node of the `r`-dimensional homogeneous product of an `N`-node factor
//! graph is an `r`-tuple `x_r x_{r-1} … x_1` over `{0, …, N-1}` (Definition 1
//! of the paper). We store such a label either as a digit slice
//! (`digits[i]` = symbol at dimension `i + 1`) or as its *rank*: the value of
//! the tuple read as a base-`N` number, `rank = Σ_i digits[i] · N^i`.
//!
//! The rank is how node identities are stored throughout the workspace: a
//! product network with `N^r` nodes uses ranks `0 … N^r - 1`.

/// The shape of a homogeneous product network: factor size `n` and dimension
/// count `r`.
///
/// `Shape` centralizes the `N^r` arithmetic (with overflow checking at
/// construction) and provides digit accessors used pervasively by the
/// algorithm and simulator crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Shape {
    n: usize,
    r: usize,
    len: u64,
}

impl Shape {
    /// Create a shape for the `r`-dimensional product of an `n`-node factor.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `r == 0`, or `n^r` does not fit in `u64` (or
    /// exceeds `2^40`, a sanity cap far above anything simulable).
    #[must_use]
    pub fn new(n: usize, r: usize) -> Self {
        assert!(n >= 2, "factor graph must have at least 2 nodes (got {n})");
        assert!(r >= 1, "dimension count must be at least 1");
        let mut len: u64 = 1;
        for _ in 0..r {
            len = len
                .checked_mul(n as u64)
                .expect("n^r overflows u64; choose smaller n or r");
        }
        assert!(
            len <= 1 << 40,
            "n^r = {len} exceeds the 2^40 sanity cap; choose smaller n or r"
        );
        Shape { n, r, len }
    }

    /// Factor graph size `N`.
    #[inline]
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Dimension count `r`.
    #[inline]
    #[must_use]
    pub fn r(&self) -> usize {
        self.r
    }

    /// Total number of nodes, `N^r`.
    #[inline]
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` iff the network has no nodes (never, by construction).
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `N^i` for `0 ≤ i ≤ r`.
    #[inline]
    #[must_use]
    pub fn stride(&self, i: usize) -> u64 {
        debug_assert!(i <= self.r);
        pow(self.n, i)
    }

    /// Digit of `rank` at (0-based) dimension index `i`.
    #[inline]
    #[must_use]
    pub fn digit(&self, rank: u64, i: usize) -> usize {
        digit(self.n, rank, i)
    }

    /// Replace the digit of `rank` at dimension index `i` with `v`.
    #[inline]
    #[must_use]
    pub fn with_digit(&self, rank: u64, i: usize, v: usize) -> u64 {
        with_digit(self.n, rank, i, v)
    }

    /// Decompose `rank` into digits, least-significant dimension first.
    #[inline]
    #[must_use]
    pub fn unrank(&self, rank: u64) -> Vec<usize> {
        radix_unrank(self.n, self.r, rank)
    }

    /// Compose digits (least-significant dimension first) into a rank.
    #[inline]
    #[must_use]
    pub fn rank(&self, digits: &[usize]) -> u64 {
        debug_assert_eq!(digits.len(), self.r);
        radix_rank(self.n, digits)
    }

    /// Iterate over all node ranks.
    #[inline]
    pub fn ranks(&self) -> impl Iterator<Item = u64> {
        0..self.len
    }

    /// The shape of a `k`-dimensional sub-product (same factor).
    #[inline]
    #[must_use]
    pub fn sub(&self, k: usize) -> Shape {
        Shape::new(self.n, k)
    }
}

/// `n^e` as `u64`. Panics on overflow (debug and release).
#[inline]
#[must_use]
pub fn pow(n: usize, e: usize) -> u64 {
    let mut acc: u64 = 1;
    for _ in 0..e {
        acc = acc.checked_mul(n as u64).expect("radix power overflow");
    }
    acc
}

/// Digit of `rank` (base `n`) at 0-based position `i`.
#[inline]
#[must_use]
pub fn digit(n: usize, rank: u64, i: usize) -> usize {
    ((rank / pow(n, i)) % n as u64) as usize
}

/// Replace the digit of `rank` (base `n`) at position `i` with `v`.
#[inline]
#[must_use]
pub fn with_digit(n: usize, rank: u64, i: usize, v: usize) -> u64 {
    debug_assert!(v < n);
    let p = pow(n, i);
    let old = (rank / p) % n as u64;
    rank - old * p + v as u64 * p
}

/// Decompose `rank` into `r` base-`n` digits, least significant first.
#[must_use]
pub fn radix_unrank(n: usize, r: usize, rank: u64) -> Vec<usize> {
    let mut out = vec![0usize; r];
    radix_unrank_into(n, rank, &mut out);
    out
}

/// Decompose `rank` into base-`n` digits into `out` (length = `r`), least
/// significant first.
pub fn radix_unrank_into(n: usize, rank: u64, out: &mut [usize]) {
    let mut m = rank;
    for d in out.iter_mut() {
        *d = (m % n as u64) as usize;
        m /= n as u64;
    }
    debug_assert_eq!(m, 0, "rank has more digits than the provided buffer");
}

/// Compose base-`n` digits (least significant first) into a rank.
#[must_use]
pub fn radix_rank(n: usize, digits: &[usize]) -> u64 {
    let mut m: u64 = 0;
    for &d in digits.iter().rev() {
        debug_assert!(d < n);
        m = m * n as u64 + d as u64;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_basics() {
        let s = Shape::new(3, 3);
        assert_eq!(s.n(), 3);
        assert_eq!(s.r(), 3);
        assert_eq!(s.len(), 27);
        assert_eq!(s.stride(0), 1);
        assert_eq!(s.stride(2), 9);
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn shape_rejects_tiny_factor() {
        let _ = Shape::new(1, 3);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn shape_rejects_zero_dims() {
        let _ = Shape::new(3, 0);
    }

    #[test]
    fn digit_roundtrip() {
        let s = Shape::new(5, 4);
        for rank in s.ranks() {
            let ds = s.unrank(rank);
            assert_eq!(s.rank(&ds), rank);
            for (i, &d) in ds.iter().enumerate() {
                assert_eq!(s.digit(rank, i), d);
            }
        }
    }

    #[test]
    fn with_digit_replaces_exactly_one() {
        let s = Shape::new(4, 3);
        for rank in s.ranks() {
            for i in 0..3 {
                for v in 0..4 {
                    let new = s.with_digit(rank, i, v);
                    assert_eq!(s.digit(new, i), v);
                    for j in 0..3 {
                        if j != i {
                            assert_eq!(s.digit(new, j), s.digit(rank, j));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn radix_rank_matches_positional_value() {
        // digits (1, 0, 2) base 3, least significant first: 2*9 + 0*3 + 1 = 19.
        assert_eq!(radix_rank(3, &[1, 0, 2]), 19);
        assert_eq!(radix_unrank(3, 3, 19), vec![1, 0, 2]);
    }

    #[test]
    fn pow_small_values() {
        assert_eq!(pow(2, 10), 1024);
        assert_eq!(pow(7, 0), 1);
        assert_eq!(pow(10, 3), 1000);
    }
}
