//! Orders on product-network node labels.
//!
//! This crate implements the combinatorial machinery of Section 2 of
//! Fernández & Efe, *Generalized Algorithm for Parallel Sorting on Product
//! Networks* (ICPP'95 / IEEE TPDS 1997):
//!
//! * mixed-radix node labels `x_r x_{r-1} … x_1` and their plain ranks
//!   ([`radix`]),
//! * the *N*-ary reflected Gray-code sequences `Q_r` of Definition 3
//!   ([`gray`]),
//! * the *snake order* of Definition 2, which is the order in which sorted
//!   data is laid out on the product network ([`snake`]),
//! * the *group sequences* `[*]Q¹_{r-1}` and `[*,*]Q^{1,2}_{r-2}` that order
//!   the `G`- and `PG_2`-subgraphs of a product graph ([`group`]),
//! * Hamming weight/distance with the paper's `*` wildcard ([`hamming`]).
//!
//! Everywhere in this crate (and the sibling crates), digit index `i`
//! (0-based) corresponds to the paper's dimension `i + 1`; digit 0 is the
//! rightmost / least-significant symbol of a label.

pub mod gray;
pub mod group;
pub mod hamming;
pub mod radix;
pub mod snake;

pub use gray::{gray_rank, gray_successor, gray_unrank, gray_unrank_into, GrayIter};
pub use group::{group_label_parity, group_sequence, GroupStep, Parity};
pub use hamming::{hamming_distance, hamming_weight, wild_distance, wild_weight, WildDigit};
pub use radix::{digit, pow, radix_rank, radix_unrank, radix_unrank_into, with_digit, Shape};
pub use snake::{
    dim1_digit_at_position, positions_of_digit, positions_of_dim1_digit, snake_rank,
    snake_successor_rank, snake_unrank, SnakeIter,
};

/// Direction of a sorted run (nondecreasing vs nonincreasing).
///
/// Step 4 of the multiway merge sorts consecutive `PG_2` subgraphs in
/// alternating directions; the direction is determined by the parity of the
/// subgraph's group label (see [`group::group_label_parity`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Nondecreasing order.
    Ascending,
    /// Nonincreasing order.
    Descending,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    #[must_use]
    pub fn flip(self) -> Self {
        match self {
            Direction::Ascending => Direction::Descending,
            Direction::Descending => Direction::Ascending,
        }
    }

    /// Direction used for a subgraph whose group label has the given parity:
    /// even ⇒ ascending, odd ⇒ descending (paper, Step 4).
    #[inline]
    #[must_use]
    pub fn for_parity(parity: Parity) -> Self {
        match parity {
            Parity::Even => Direction::Ascending,
            Parity::Odd => Direction::Descending,
        }
    }

    /// `true` if `a` then `b` is in order for this direction.
    #[inline]
    pub fn in_order<K: Ord>(self, a: &K, b: &K) -> bool {
        match self {
            Direction::Ascending => a <= b,
            Direction::Descending => a >= b,
        }
    }
}
