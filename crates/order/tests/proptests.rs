//! Property-based tests for the order machinery.

use pns_order::gray::{gray_rank, gray_successor, gray_unrank};
use pns_order::group::{group_label_parity, group_sequence, Parity};
use pns_order::hamming::{hamming_distance, hamming_weight};
use pns_order::radix::{radix_rank, radix_unrank, Shape};
use pns_order::snake::{
    dim1_digit_at_position, node_at_snake_pos, positions_of_dim1_digit, snake2_rank, snake2_unrank,
    snake_pos_of_node,
};
use proptest::prelude::*;

fn shape_strategy() -> impl Strategy<Value = (usize, usize)> {
    (2usize..9, 1usize..6).prop_filter("size cap", |&(n, r)| (n as u64).pow(r as u32) <= 1 << 16)
}

proptest! {
    #[test]
    fn radix_roundtrip((n, r) in shape_strategy(), seed in any::<u64>()) {
        let total = (n as u64).pow(r as u32);
        let rank = seed % total;
        let digits = radix_unrank(n, r, rank);
        prop_assert_eq!(radix_rank(n, &digits), rank);
        prop_assert!(digits.iter().all(|&d| d < n));
    }

    #[test]
    fn gray_roundtrip((n, r) in shape_strategy(), seed in any::<u64>()) {
        let total = (n as u64).pow(r as u32);
        let m = seed % total;
        let digits = gray_unrank(n, r, m);
        prop_assert_eq!(gray_rank(n, &digits), m);
    }

    #[test]
    fn gray_successor_has_unit_distance((n, r) in shape_strategy(), seed in any::<u64>()) {
        let total = (n as u64).pow(r as u32);
        let m = seed % total;
        let cur = gray_unrank(n, r, m);
        let mut next = cur.clone();
        match gray_successor(n, &mut next) {
            Some(_) => {
                prop_assert_eq!(hamming_distance(&cur, &next), 1);
                prop_assert_eq!(gray_rank(n, &next), m + 1);
            }
            None => prop_assert_eq!(m, total - 1),
        }
    }

    #[test]
    fn gray_weights_alternate((n, r) in shape_strategy(), seed in any::<u64>()) {
        let total = (n as u64).pow(r as u32);
        let m = seed % total;
        let w = hamming_weight(&gray_unrank(n, r, m));
        prop_assert_eq!(w % 2, m % 2);
    }

    #[test]
    fn snake_is_gray_on_node_ranks((n, r) in shape_strategy(), seed in any::<u64>()) {
        let shape = Shape::new(n, r);
        let node = seed % shape.len();
        let pos = snake_pos_of_node(shape, node);
        prop_assert_eq!(node_at_snake_pos(shape, pos), node);
        prop_assert_eq!(gray_rank(n, &shape.unrank(node)), pos);
    }

    #[test]
    fn dim1_digit_closed_form((n, r) in shape_strategy(), seed in any::<u64>()) {
        prop_assume!(r >= 2);
        let shape = Shape::new(n, r);
        let pos = seed % shape.len();
        let node = node_at_snake_pos(shape, pos);
        prop_assert_eq!(dim1_digit_at_position(n, pos), shape.digit(node, 0));
    }

    #[test]
    fn dim1_positions_partition(n in 2usize..9, blocks in 1usize..20) {
        let len = (n * blocks) as u64;
        let mut seen = vec![0u8; len as usize];
        for v in 0..n {
            for p in positions_of_dim1_digit(n, len, v) {
                seen[p as usize] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn snake2_roundtrip(n in 2usize..20, seed in any::<u64>()) {
        let pos = seed % (n * n) as u64;
        let (x1, x2) = snake2_unrank(n, pos);
        prop_assert_eq!(snake2_rank(n, x1, x2), pos);
        prop_assert!(x1 < n && x2 < n);
    }

    #[test]
    fn group_sequence_is_gray(n in 2usize..5, len in 1usize..4) {
        let seq = group_sequence(n, len);
        prop_assert_eq!(seq.len() as u64, (n as u64).pow(len as u32));
        for (z, (lab, par)) in seq.iter().enumerate() {
            prop_assert_eq!(*par, Parity::of(z as u64));
            prop_assert_eq!(group_label_parity(lab), *par);
        }
        for w in seq.windows(2) {
            prop_assert_eq!(hamming_distance(&w[0].0, &w[1].0), 1);
        }
    }
}
