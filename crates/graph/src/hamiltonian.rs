//! Hamiltonian-path search on small factor graphs.
//!
//! Section 2 of the paper: "if `G` contains a Hamiltonian path, then it is
//! beneficial (although not required for the correctness of the proposed
//! sorting algorithm) to label the nodes in the order they appear in the
//! Hamiltonian path". Factor graphs are small (≤ a few dozen nodes), so an
//! exact backtracking search with cheap pruning is entirely adequate; the
//! search is budgeted so non-Hamiltonian graphs fail fast instead of
//! exploding.

use crate::graph::Graph;
use crate::traversal::is_connected;

/// Default node-expansion budget for [`hamiltonian_path`].
pub const DEFAULT_BUDGET: u64 = 2_000_000;

/// Find a Hamiltonian path in `g`, trying every start node, with the
/// default search budget. Returns the node sequence, or `None` if no path
/// was found (either none exists or the budget ran out).
#[must_use]
pub fn hamiltonian_path(g: &Graph) -> Option<Vec<u32>> {
    hamiltonian_path_budgeted(g, DEFAULT_BUDGET)
}

/// As [`hamiltonian_path`] with an explicit expansion budget.
#[must_use]
pub fn hamiltonian_path_budgeted(g: &Graph, budget: u64) -> Option<Vec<u32>> {
    let n = g.n();
    if n == 0 {
        return None;
    }
    if n == 1 {
        return Some(vec![0]);
    }
    if !is_connected(g) {
        return None;
    }
    // Bipartite-imbalance prune: a Hamiltonian path alternates sides, so a
    // bipartite graph with part sizes differing by more than one has none.
    // This kills complete binary trees and stars instantly.
    if let Some((a, b)) = bipartition_sizes(g) {
        if a.abs_diff(b) > 1 {
            return None;
        }
    }
    let mut budget = budget;
    // Start from low-degree nodes first: a Hamiltonian path must end at
    // degree-1 nodes if any exist.
    let mut starts: Vec<u32> = (0..n as u32).collect();
    starts.sort_by_key(|&v| g.degree(v));
    for s in starts {
        let mut visited = vec![false; n];
        let mut path = Vec::with_capacity(n);
        visited[s as usize] = true;
        path.push(s);
        if extend(g, &mut path, &mut visited, &mut budget) {
            return Some(path);
        }
        if budget == 0 {
            return None;
        }
    }
    None
}

/// If `g` is bipartite, the sizes of its two parts.
fn bipartition_sizes(g: &Graph) -> Option<(usize, usize)> {
    let n = g.n();
    let mut color = vec![u8::MAX; n];
    let mut counts = (0usize, 0usize);
    for start in 0..n as u32 {
        if color[start as usize] != u8::MAX {
            continue;
        }
        color[start as usize] = 0;
        counts.0 += 1;
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            let cv = color[v as usize];
            for &w in g.neighbors(v) {
                match color[w as usize] {
                    u8::MAX => {
                        color[w as usize] = 1 - cv;
                        if cv == 0 {
                            counts.1 += 1;
                        } else {
                            counts.0 += 1;
                        }
                        stack.push(w);
                    }
                    c if c == cv => return None, // odd cycle
                    _ => {}
                }
            }
        }
    }
    Some(counts)
}

fn extend(g: &Graph, path: &mut Vec<u32>, visited: &mut [bool], budget: &mut u64) -> bool {
    if path.len() == g.n() {
        return true;
    }
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    let v = *path.last().expect("path is non-empty");
    // Warnsdorff-style ordering: try the unvisited neighbor with fewest
    // remaining options first.
    let mut nexts: Vec<u32> = g
        .neighbors(v)
        .iter()
        .copied()
        .filter(|&w| !visited[w as usize])
        .collect();
    nexts.sort_by_key(|&w| {
        g.neighbors(w)
            .iter()
            .filter(|&&x| !visited[x as usize])
            .count()
    });
    for w in nexts {
        // Dead-end prune: stepping to `w` must not strand an unvisited
        // neighbor of `v` with zero remaining unvisited neighbors.
        visited[w as usize] = true;
        path.push(w);
        if extend(g, path, visited, budget) {
            return true;
        }
        path.pop();
        visited[w as usize] = false;
        if *budget == 0 {
            return false;
        }
    }
    false
}

/// Find a Hamiltonian cycle in `g` (returned as a node sequence whose last
/// element is also adjacent to its first), with the default budget.
///
/// Returns `None` if no cycle was found (either none exists or the budget
/// ran out). Note the Petersen graph is the classic graph with Hamiltonian
/// paths but no Hamiltonian cycle.
#[must_use]
pub fn hamiltonian_cycle(g: &Graph) -> Option<Vec<u32>> {
    hamiltonian_cycle_budgeted(g, DEFAULT_BUDGET)
}

/// As [`hamiltonian_cycle`] with an explicit expansion budget.
#[must_use]
pub fn hamiltonian_cycle_budgeted(g: &Graph, budget: u64) -> Option<Vec<u32>> {
    let n = g.n();
    if n < 3 || !is_connected(g) {
        return None;
    }
    // A Hamiltonian cycle alternates bipartition sides exactly, so both
    // sides must be equal in a bipartite graph.
    if let Some((a, b)) = bipartition_sizes(g) {
        if a != b {
            return None;
        }
    }
    // Fix node 0 as the start; search for a path covering everything whose
    // endpoint is adjacent to 0.
    let mut budget = budget;
    let mut visited = vec![false; n];
    let mut path = Vec::with_capacity(n);
    visited[0] = true;
    path.push(0);
    if extend_cycle(g, &mut path, &mut visited, &mut budget) {
        return Some(path);
    }
    None
}

fn extend_cycle(g: &Graph, path: &mut Vec<u32>, visited: &mut [bool], budget: &mut u64) -> bool {
    if path.len() == g.n() {
        return g.has_edge(*path.last().expect("non-empty"), path[0]);
    }
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    let v = *path.last().expect("path is non-empty");
    let mut nexts: Vec<u32> = g
        .neighbors(v)
        .iter()
        .copied()
        .filter(|&w| !visited[w as usize])
        .collect();
    nexts.sort_by_key(|&w| {
        g.neighbors(w)
            .iter()
            .filter(|&&x| !visited[x as usize])
            .count()
    });
    for w in nexts {
        visited[w as usize] = true;
        path.push(w);
        if extend_cycle(g, path, visited, budget) {
            return true;
        }
        path.pop();
        visited[w as usize] = false;
        if *budget == 0 {
            return false;
        }
    }
    false
}

/// Verify that `order` is a Hamiltonian path of `g`.
#[must_use]
pub fn is_hamiltonian_path(g: &Graph, order: &[u32]) -> bool {
    if order.len() != g.n() {
        return false;
    }
    let mut seen = vec![false; g.n()];
    for &v in order {
        if (v as usize) >= g.n() || seen[v as usize] {
            return false;
        }
        seen[v as usize] = true;
    }
    order.windows(2).all(|w| g.has_edge(w[0], w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factories;

    #[test]
    fn path_graph_is_its_own_hamiltonian_path() {
        let g = factories::path(6);
        let p = hamiltonian_path(&g).unwrap();
        assert!(is_hamiltonian_path(&g, &p));
    }

    #[test]
    fn cycle_and_complete_have_paths() {
        for g in [factories::cycle(7), factories::complete(6)] {
            let p = hamiltonian_path(&g).unwrap();
            assert!(is_hamiltonian_path(&g, &p), "{g:?}");
        }
    }

    #[test]
    fn petersen_has_a_hamiltonian_path() {
        // The Petersen graph is hypohamiltonian: no Hamiltonian cycle, but
        // it does have Hamiltonian paths (Section 5.4 relies on this).
        let g = factories::petersen();
        let p = hamiltonian_path(&g).unwrap();
        assert!(is_hamiltonian_path(&g, &p));
    }

    #[test]
    fn de_bruijn_has_a_hamiltonian_path() {
        for bits in 2..=5 {
            let g = factories::de_bruijn(bits);
            let p = hamiltonian_path(&g).unwrap();
            assert!(is_hamiltonian_path(&g, &p), "bits={bits}");
        }
    }

    #[test]
    fn trees_and_stars_have_none() {
        assert!(hamiltonian_path(&factories::complete_binary_tree(3)).is_none());
        assert!(hamiltonian_path(&factories::complete_binary_tree(4)).is_none());
        assert!(hamiltonian_path(&factories::star(5)).is_none());
    }

    #[test]
    fn disconnected_graph_has_none() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(hamiltonian_path(&g).is_none());
    }

    #[test]
    fn verifier_rejects_bad_orders() {
        let g = factories::path(4);
        assert!(!is_hamiltonian_path(&g, &[0, 1, 2])); // too short
        assert!(!is_hamiltonian_path(&g, &[0, 1, 1, 2])); // repeat
        assert!(!is_hamiltonian_path(&g, &[0, 2, 1, 3])); // non-edges
    }

    #[test]
    fn single_node() {
        let g = Graph::from_edges(1, &[]);
        assert_eq!(hamiltonian_path(&g), Some(vec![0]));
    }
}
