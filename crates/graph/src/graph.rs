//! Undirected graph representation used for factor graphs.
//!
//! Factor graphs are small (tens of nodes) but are queried heavily — every
//! adjacency test in the product network reduces to an adjacency test in the
//! factor — so neighbor lists are kept sorted and deduplicated, and
//! [`Graph::has_edge`] is a binary search.

use std::fmt;

/// An undirected simple graph with nodes `0 … n-1`.
///
/// Self-loops and parallel edges supplied at construction are dropped
/// (relevant for de Bruijn and shuffle-exchange graphs, whose natural
/// definitions produce both).
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
    edge_count: usize,
    name: String,
}

impl Graph {
    /// Build a graph with `n` nodes from an edge list.
    ///
    /// Duplicate edges (in either orientation) and self-loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `≥ n`.
    #[must_use]
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        Self::from_edges_named(n, edges, "graph")
    }

    /// As [`Graph::from_edges`], with a human-readable name used in Debug
    /// output and experiment reports.
    #[must_use]
    pub fn from_edges_named(n: usize, edges: &[(u32, u32)], name: &str) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge ({a}, {b}) out of range for {n} nodes"
            );
            if a == b {
                continue;
            }
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        let mut edge_count = 0;
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            edge_count += list.len();
        }
        Graph {
            adj,
            edge_count: edge_count / 2,
            name: name.to_owned(),
        }
    }

    /// Number of nodes `N`.
    #[inline]
    #[must_use]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges.
    #[inline]
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Human-readable name given at construction.
    #[inline]
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    #[must_use]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    #[inline]
    #[must_use]
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// Maximum degree over all nodes.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// `true` iff `(a, b)` is an edge. `O(log deg)`.
    #[inline]
    #[must_use]
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.adj[a as usize].binary_search(&b).is_ok()
    }

    /// Iterate over every undirected edge once, as `(low, high)` pairs in
    /// lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adj.iter().enumerate().flat_map(|(v, list)| {
            let v = v as u32;
            list.iter()
                .copied()
                .filter(move |&w| v < w)
                .map(move |w| (v, w))
        })
    }

    /// Degree sequence, descending. Useful as a cheap isomorphism
    /// invariant in tests.
    #[must_use]
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut d: Vec<usize> = self.adj.iter().map(Vec::len).collect();
        d.sort_unstable_by(|a, b| b.cmp(a));
        d
    }

    /// Relabel nodes by `perm` (`perm[old] = new`), returning the
    /// isomorphic graph. Used to install Hamiltonian-path / linear-array
    /// labelings as recommended in Section 2 of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0 … n-1`.
    #[must_use]
    pub fn relabeled(&self, perm: &[u32]) -> Graph {
        let n = self.n();
        assert_eq!(perm.len(), n, "permutation length mismatch");
        let mut seen = vec![false; n];
        for &p in perm {
            assert!((p as usize) < n && !seen[p as usize], "not a permutation");
            seen[p as usize] = true;
        }
        let edges: Vec<(u32, u32)> = self
            .edges()
            .map(|(a, b)| (perm[a as usize], perm[b as usize]))
            .collect();
        Graph::from_edges_named(n, &edges, &self.name)
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph({}, n={}, m={})",
            self.name,
            self.n(),
            self.edge_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_graph() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.n(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn drops_self_loops_and_duplicates() {
        let g = Graph::from_edges(3, &[(0, 0), (0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(0), 1);
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es.len(), 5);
        assert!(es.iter().all(|&(a, b)| a < b));
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let h = g.relabeled(&[3, 2, 1, 0]);
        assert_eq!(h.edge_count(), 3);
        assert!(h.has_edge(3, 2));
        assert!(h.has_edge(2, 1));
        assert!(h.has_edge(1, 0));
        assert_eq!(g.degree_sequence(), h.degree_sequence());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn relabel_rejects_non_permutation() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let _ = g.relabeled(&[0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edge() {
        let _ = Graph::from_edges(2, &[(0, 5)]);
    }
}
