//! Linear-array embeddings of arbitrary connected graphs.
//!
//! Section 2 of the paper: if the factor graph has no Hamiltonian path "it
//! is always possible to embed a linear array in `G` with dilation three and
//! congestion two" — this is Sekanina's theorem (the cube of every connected
//! graph is Hamiltonian-connected), and the Corollary's universal
//! `18(r-1)²N` bound rests on the same construction applied per dimension.
//!
//! [`LinearEmbedding::best`] finds a Hamiltonian path when it can
//! (dilation 1) and otherwise constructs the Sekanina ordering on a BFS
//! spanning tree (dilation ≤ 3, verified).

use crate::graph::Graph;
use crate::hamiltonian::hamiltonian_path;
use crate::traversal::{bfs_distances, spanning_tree};

/// A linear ordering of a graph's nodes with bounded dilation: consecutive
/// nodes of `order` are within graph distance `dilation` of each other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearEmbedding {
    /// All nodes, each exactly once; consecutive entries are "neighbors" of
    /// the embedded linear array.
    pub order: Vec<u32>,
    /// Maximum graph distance between consecutive entries (1 for a
    /// Hamiltonian path, ≤ 3 always).
    pub dilation: u32,
}

impl LinearEmbedding {
    /// Best available linear embedding: Hamiltonian path if found (dilation
    /// 1), otherwise the Sekanina ordering of a BFS spanning tree (dilation
    /// ≤ 3).
    ///
    /// ```
    /// use pns_graph::{factories, LinearEmbedding};
    ///
    /// // The Petersen graph is Hamiltonian-traceable: dilation 1.
    /// assert_eq!(LinearEmbedding::best(&factories::petersen()).dilation, 1);
    /// // A star has no Hamiltonian path, but Sekanina keeps dilation ≤ 3.
    /// assert!(LinearEmbedding::best(&factories::star(6)).dilation <= 3);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `g` is disconnected.
    #[must_use]
    pub fn best(g: &Graph) -> Self {
        if let Some(order) = hamiltonian_path(g) {
            return LinearEmbedding { order, dilation: 1 };
        }
        let order = sekanina_order(g);
        let dilation = measure_dilation(g, &order);
        assert!(
            dilation <= 3,
            "Sekanina ordering must have dilation ≤ 3, measured {dilation}"
        );
        LinearEmbedding { order, dilation }
    }

    /// Best available *cyclic* embedding (for emulating the cycle / torus,
    /// as in the Corollary): a Hamiltonian cycle if found, otherwise the
    /// Sekanina ordering, whose endpoints are a tree edge apart, so the
    /// wrap-around hop also has distance ≤ 3 (in fact 1).
    ///
    /// The reported `dilation` includes the wrap-around hop from the last
    /// node back to the first.
    ///
    /// # Panics
    ///
    /// Panics if `g` is disconnected or has fewer than 3 nodes.
    #[must_use]
    pub fn best_cycle(g: &Graph) -> Self {
        if let Some(order) = crate::hamiltonian::hamiltonian_cycle(g) {
            return LinearEmbedding { order, dilation: 1 };
        }
        let order = sekanina_order(g);
        let mut dilation = measure_dilation(g, &order);
        let close = bfs_distances(g, order[0])[*order.last().expect("non-empty order") as usize];
        dilation = dilation.max(close);
        assert!(
            dilation <= 3,
            "cyclic Sekanina dilation ≤ 3, got {dilation}"
        );
        LinearEmbedding { order, dilation }
    }

    /// The inverse map: `position_of[v]` is the linear-array position of
    /// node `v`.
    #[must_use]
    pub fn positions(&self) -> Vec<u32> {
        let mut pos = vec![0u32; self.order.len()];
        for (i, &v) in self.order.iter().enumerate() {
            pos[v as usize] = i as u32;
        }
        pos
    }
}

/// Maximum graph distance between consecutive entries of `order`.
#[must_use]
pub fn measure_dilation(g: &Graph, order: &[u32]) -> u32 {
    let mut max = 0;
    for w in order.windows(2) {
        let d = bfs_distances(g, w[0])[w[1] as usize];
        assert!(d != u32::MAX, "order spans disconnected nodes");
        max = max.max(d);
    }
    max
}

/// Sekanina ordering of the nodes of a connected graph `g`: a Hamiltonian
/// path of `T³` for a BFS spanning tree `T` of `g`, so consecutive nodes
/// are within distance 3 in `T` (hence in `g`).
///
/// Construction (induction on the classic proof): for a tree edge `(u, v)`,
/// a Hamiltonian path of `T³` from `u` to `v` is obtained by deleting
/// `(u, v)`, recursing on the component of `u` from `u` to one of its
/// remaining neighbors `u'`, recursing on the component of `v` from `v` to
/// one of its remaining neighbors `v'`, and concatenating
/// `P(u → u') · reverse(P(v → v'))`; the junction `u' → v'` has distance at
/// most 3 via `u' – u – v – v'`.
#[must_use]
pub fn sekanina_order(g: &Graph) -> Vec<u32> {
    let n = g.n();
    if n == 1 {
        return vec![0];
    }
    let parent = spanning_tree(g, 0);
    // Tree adjacency.
    let mut tadj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 1..n as u32 {
        let p = parent[v as usize];
        tadj[v as usize].push(p);
        tadj[p as usize].push(v);
    }
    let u = 0u32;
    let v = tadj[0][0];
    let mut allowed = vec![true; n];
    let order = ham3(&tadj, &mut allowed, u, v);
    debug_assert_eq!(order.len(), n);
    order
}

/// Hamiltonian path of `T³` restricted to the `allowed` component, from `u`
/// to (ending near) `v`, where `(u, v)` is a tree edge with both endpoints
/// allowed. Consumes the allowed flags of the emitted nodes.
fn ham3(tadj: &[Vec<u32>], allowed: &mut [bool], u: u32, v: u32) -> Vec<u32> {
    // Split the allowed component by removing edge (u, v).
    let cu = component_without(tadj, allowed, u, v);
    // Path through u's side, from u toward a neighbor of u.
    let pu = side_path(tadj, allowed, &cu, u);
    // Mark u's side as consumed before recursing on v's side.
    for &x in &cu {
        allowed[x as usize] = false;
    }
    let cv = component_without(tadj, allowed, v, u);
    let mut pv = side_path(tadj, allowed, &cv, v);
    for &x in &cv {
        allowed[x as usize] = false;
    }
    pv.reverse(); // path … → v becomes the tail
    let mut out = pu;
    out.extend(pv);
    out
}

/// Hamiltonian path of `T³` within component `comp` (which contains `root`),
/// starting at `root` and ending at a tree-neighbor of `root` (or at `root`
/// itself if the component is a single node).
fn side_path(tadj: &[Vec<u32>], allowed: &mut [bool], comp: &[u32], root: u32) -> Vec<u32> {
    if comp.len() == 1 {
        return vec![root];
    }
    let mut in_comp = vec![false; tadj.len()];
    for &x in comp {
        in_comp[x as usize] = true;
    }
    let next = tadj[root as usize]
        .iter()
        .copied()
        .find(|&w| in_comp[w as usize] && allowed[w as usize])
        .expect("multi-node component has a tree neighbor of its root");
    // Recurse within the component only.
    let mut sub_allowed: Vec<bool> = allowed.to_vec();
    for (i, a) in sub_allowed.iter_mut().enumerate() {
        *a = *a && in_comp[i];
    }
    ham3(tadj, &mut sub_allowed, root, next)
}

/// Nodes of the allowed component containing `root` when tree edge
/// `(root, other)` is removed.
fn component_without(tadj: &[Vec<u32>], allowed: &[bool], root: u32, other: u32) -> Vec<u32> {
    let mut seen = vec![false; tadj.len()];
    let mut stack = vec![root];
    let mut comp = Vec::new();
    seen[root as usize] = true;
    while let Some(x) = stack.pop() {
        comp.push(x);
        for &w in &tadj[x as usize] {
            if x == root && w == other {
                continue; // the removed edge
            }
            if allowed[w as usize] && !seen[w as usize] {
                seen[w as usize] = true;
                stack.push(w);
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factories;

    fn check_embedding(g: &Graph) {
        let emb = LinearEmbedding::best(g);
        assert_eq!(emb.order.len(), g.n());
        let mut seen = vec![false; g.n()];
        for &v in &emb.order {
            assert!(!seen[v as usize], "node repeated");
            seen[v as usize] = true;
        }
        assert!(emb.dilation <= 3);
        assert_eq!(measure_dilation(g, &emb.order), emb.dilation);
    }

    #[test]
    fn hamiltonian_factors_get_dilation_one() {
        for g in [
            factories::path(8),
            factories::cycle(9),
            factories::complete(5),
            factories::petersen(),
            factories::de_bruijn(4),
        ] {
            let emb = LinearEmbedding::best(&g);
            assert_eq!(emb.dilation, 1, "{g:?}");
            check_embedding(&g);
        }
    }

    #[test]
    fn trees_get_dilation_at_most_three() {
        for levels in 2..=6 {
            let g = factories::complete_binary_tree(levels);
            check_embedding(&g);
        }
        check_embedding(&factories::star(9));
    }

    #[test]
    fn random_graphs_embed() {
        for seed in 0..10 {
            let g = factories::random_connected(23, 4, seed);
            check_embedding(&g);
        }
    }

    #[test]
    fn sekanina_on_a_path_is_still_valid() {
        // Degenerate tree: the spanning tree of a path is the path itself.
        let g = factories::path(7);
        let order = sekanina_order(&g);
        assert_eq!(order.len(), 7);
        assert!(measure_dilation(&g, &order) <= 3);
    }

    #[test]
    fn positions_is_inverse_of_order() {
        let g = factories::complete_binary_tree(4);
        let emb = LinearEmbedding::best(&g);
        let pos = emb.positions();
        for (i, &v) in emb.order.iter().enumerate() {
            assert_eq!(pos[v as usize] as usize, i);
        }
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::from_edges(1, &[]);
        assert_eq!(sekanina_order(&g), vec![0]);
    }

    fn check_cycle_embedding(g: &Graph, max_dilation: u32) {
        let emb = LinearEmbedding::best_cycle(g);
        assert_eq!(emb.order.len(), g.n());
        assert!(emb.dilation <= max_dilation, "{g:?}: {}", emb.dilation);
        let linear = measure_dilation(g, &emb.order);
        assert!(linear <= emb.dilation);
        let close =
            crate::traversal::bfs_distances(g, emb.order[0])[*emb.order.last().unwrap() as usize];
        assert!(close <= emb.dilation, "wrap-around hop too long");
    }

    #[test]
    fn cycle_embedding_of_hamiltonian_graphs() {
        check_cycle_embedding(&factories::cycle(8), 1);
        check_cycle_embedding(&factories::complete(6), 1);
        check_cycle_embedding(&factories::de_bruijn(3), 1);
    }

    #[test]
    fn cycle_embedding_of_petersen_uses_sekanina() {
        // Petersen is hypohamiltonian: Hamiltonian path yes, cycle no.
        check_cycle_embedding(&factories::petersen(), 3);
    }

    #[test]
    fn cycle_embedding_of_trees() {
        check_cycle_embedding(&factories::complete_binary_tree(4), 3);
        check_cycle_embedding(&factories::star(7), 3);
    }
}
