//! Synchronous store-and-forward routing inside a factor graph.
//!
//! The odd-even transposition rounds of Step 4 compare keys held by nodes
//! whose factor labels differ by one (`u` vs `u + 1` at some dimension).
//! When the factor graph is labeled along a Hamiltonian path those nodes
//! are adjacent and a transposition round is a single compare-exchange
//! step; otherwise the paper implements the compare-exchange by
//! *permutation routing within `G`*: the two nodes send each other their
//! keys and then each locally keeps the minimum or maximum. This module
//! provides the synchronous router that executes (and thereby costs) such
//! permutations: one round lets every directed edge carry one message.

use crate::graph::Graph;
use crate::traversal::bfs_distances;
use std::collections::HashMap;

/// Result of executing a routing pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingOutcome {
    /// Synchronous rounds until the last message arrived (0 if every
    /// message started at its destination).
    pub rounds: u32,
    /// Number of messages routed.
    pub delivered: usize,
}

/// A greedy synchronous store-and-forward router on a fixed graph.
///
/// Messages advance along BFS-shortest next hops; each directed edge
/// carries at most one message per round; blocked messages wait. Because a
/// message only ever moves strictly closer to its destination and at least
/// one message moves every round, the router always terminates in at most
/// (total remaining distance) rounds.
pub struct SyncRouter<'g> {
    g: &'g Graph,
    /// BFS distance fields keyed by destination, computed on demand.
    dist_cache: HashMap<u32, Vec<u32>>,
}

impl<'g> SyncRouter<'g> {
    /// Create a router for `g`.
    #[must_use]
    pub fn new(g: &'g Graph) -> Self {
        SyncRouter {
            g,
            dist_cache: HashMap::new(),
        }
    }

    fn dist_to(&mut self, dst: u32) -> &Vec<u32> {
        let g = self.g;
        self.dist_cache
            .entry(dst)
            .or_insert_with(|| bfs_distances(g, dst))
    }

    /// Route every `(src, dst)` message; returns the number of synchronous
    /// rounds taken.
    ///
    /// # Panics
    ///
    /// Panics if any destination is unreachable from its source.
    pub fn route(&mut self, messages: &[(u32, u32)]) -> RoutingOutcome {
        #[derive(Clone, Copy)]
        struct Msg {
            at: u32,
            dst: u32,
        }
        let mut msgs: Vec<Msg> = messages
            .iter()
            .map(|&(src, dst)| Msg { at: src, dst })
            .collect();
        for m in &msgs {
            assert!(
                self.dist_to(m.dst)[m.at as usize] != u32::MAX,
                "destination {} unreachable from {}",
                m.dst,
                m.at
            );
        }
        let n = self.g.n();
        let mut rounds = 0u32;
        loop {
            if msgs.iter().all(|m| m.at == m.dst) {
                return RoutingOutcome {
                    rounds,
                    delivered: messages.len(),
                };
            }
            // Reserve directed edges greedily in message order.
            let mut edge_used: HashMap<(u32, u32), ()> = HashMap::with_capacity(n);
            let mut moved_any = false;
            for m in msgs.iter_mut() {
                if m.at == m.dst {
                    continue;
                }
                let dist = self.dist_cache.get(&m.dst).expect("prefetched above");
                let dc = dist[m.at as usize];
                let next =
                    self.g.neighbors(m.at).iter().copied().find(|&w| {
                        dist[w as usize] + 1 == dc && !edge_used.contains_key(&(m.at, w))
                    });
                if let Some(w) = next {
                    edge_used.insert((m.at, w), ());
                    m.at = w;
                    moved_any = true;
                }
            }
            assert!(moved_any, "router made no progress");
            rounds += 1;
        }
    }
}

/// Execute the key-exchange phase of a compare-exchange between node pairs
/// of `g` (both directions of each pair are routed), returning the number
/// of synchronous routing rounds. Adjacent pairs cost one round; pairs at
/// distance `d` cost at least `d` rounds, more under edge contention.
///
/// Pairs must be disjoint (each node appears in at most one pair), as they
/// are in an odd-even transposition round.
pub fn route_compare_exchange(g: &Graph, pairs: &[(u32, u32)]) -> RoutingOutcome {
    let mut seen = vec![false; g.n()];
    for &(a, b) in pairs {
        assert!(a != b, "degenerate pair");
        for v in [a, b] {
            assert!(!seen[v as usize], "pairs must be disjoint (node {v})");
            seen[v as usize] = true;
        }
    }
    let mut messages = Vec::with_capacity(pairs.len() * 2);
    for &(a, b) in pairs {
        messages.push((a, b));
        messages.push((b, a));
    }
    SyncRouter::new(g).route(&messages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factories;

    #[test]
    fn empty_routing_is_free() {
        let g = factories::path(4);
        let out = SyncRouter::new(&g).route(&[]);
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn already_delivered_is_free() {
        let g = factories::path(4);
        let out = SyncRouter::new(&g).route(&[(2, 2), (0, 0)]);
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn single_message_takes_distance_rounds() {
        let g = factories::path(6);
        let out = SyncRouter::new(&g).route(&[(0, 5)]);
        assert_eq!(out.rounds, 5);
        let g = factories::cycle(8);
        let out = SyncRouter::new(&g).route(&[(0, 4)]);
        assert_eq!(out.rounds, 4);
    }

    #[test]
    fn adjacent_transpositions_cost_one_round() {
        let g = factories::path(8);
        let pairs: Vec<(u32, u32)> = (0..4).map(|i| (2 * i, 2 * i + 1)).collect();
        let out = route_compare_exchange(&g, &pairs);
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn full_reversal_on_path_within_bound() {
        // Reversal permutation on an N-node path routes in at most N-1
        // rounds (the paper's R(N) bound for the linear array).
        for n in [4usize, 6, 9] {
            let g = factories::path(n);
            let msgs: Vec<(u32, u32)> = (0..n as u32).map(|v| (v, n as u32 - 1 - v)).collect();
            let out = SyncRouter::new(&g).route(&msgs);
            assert!(out.rounds < (n as u32), "n={n}: {} rounds", out.rounds);
        }
    }

    #[test]
    fn cycle_permutation_within_half_n_for_rotation() {
        // Rotating by k on an N-cycle takes min(k, N-k) rounds: every
        // message can move in parallel around the cycle.
        let n = 10u32;
        let g = factories::cycle(n as usize);
        let msgs: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 3) % n)).collect();
        let out = SyncRouter::new(&g).route(&msgs);
        assert_eq!(out.rounds, 3);
    }

    #[test]
    fn distance_three_pairs_on_tree() {
        let g = factories::complete_binary_tree(3);
        // Leaves 3 and 4 share parent 1: distance 2.
        let out = route_compare_exchange(&g, &[(3, 4)]);
        assert_eq!(out.rounds, 2);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_pairs_rejected() {
        let g = factories::path(4);
        let _ = route_compare_exchange(&g, &[(0, 1), (1, 2)]);
    }
}
