//! Rendering graphs for inspection: Graphviz DOT export and adjacency
//! summaries. Used by the structural experiments and handy when exploring
//! new factor graphs.

use crate::graph::Graph;
use std::fmt::Write as _;

/// Render the graph in Graphviz DOT format (undirected).
///
/// `highlight_path`, if given, is drawn bold — used to visualize
/// Hamiltonian paths and linear-array embeddings.
#[must_use]
pub fn to_dot(g: &Graph, highlight_path: Option<&[u32]>) -> String {
    let mut bold: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    if let Some(path) = highlight_path {
        for w in path.windows(2) {
            let (a, b) = (w[0].min(w[1]), w[0].max(w[1]));
            bold.insert((a, b));
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{}\" {{", g.name());
    let _ = writeln!(out, "  node [shape=circle];");
    for v in 0..g.n() as u32 {
        let _ = writeln!(out, "  {v};");
    }
    for (a, b) in g.edges() {
        if bold.contains(&(a, b)) {
            let _ = writeln!(out, "  {a} -- {b} [penwidth=3];");
        } else {
            let _ = writeln!(out, "  {a} -- {b};");
        }
    }
    out.push_str("}\n");
    out
}

/// A compact one-line-per-node adjacency listing.
#[must_use]
pub fn adjacency_table(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} (n={}, m={})", g.name(), g.n(), g.edge_count());
    for v in 0..g.n() as u32 {
        let ns: Vec<String> = g.neighbors(v).iter().map(ToString::to_string).collect();
        let _ = writeln!(out, "  {v}: {}", ns.join(" "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factories;

    #[test]
    fn dot_contains_every_edge() {
        let g = factories::cycle(4);
        let dot = to_dot(&g, None);
        assert!(dot.starts_with("graph \"cycle4\""));
        for (a, b) in g.edges() {
            assert!(dot.contains(&format!("{a} -- {b}")), "missing {a}--{b}");
        }
    }

    #[test]
    fn highlighted_path_is_bold() {
        let g = factories::path(4);
        let dot = to_dot(&g, Some(&[0, 1, 2, 3]));
        assert_eq!(dot.matches("penwidth=3").count(), 3);
    }

    #[test]
    fn adjacency_table_lists_all_nodes() {
        let g = factories::star(4);
        let table = adjacency_table(&g);
        assert!(table.contains("star4"));
        assert!(table.contains("0: 1 2 3"));
        assert!(table.contains("3: 0"));
    }
}
