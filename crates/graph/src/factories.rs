//! Standard factor graphs.
//!
//! These are the factor graphs from which the paper's Section 5 networks are
//! built: the path (grids), the cycle (tori), `K_2` (hypercubes), the
//! complete binary tree (mesh-connected trees), the Petersen graph (Petersen
//! cubes), and binary de Bruijn / shuffle-exchange graphs. A seeded random
//! connected graph is provided for the Corollary's "any connected factor"
//! experiments.

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Path (linear array) `0 — 1 — … — n-1`.
#[must_use]
pub fn path(n: usize) -> Graph {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
    Graph::from_edges_named(n, &edges, &format!("path{n}"))
}

/// Cycle `0 — 1 — … — n-1 — 0`.
#[must_use]
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
    edges.push((n as u32 - 1, 0));
    Graph::from_edges_named(n, &edges, &format!("cycle{n}"))
}

/// Complete graph `K_n`.
#[must_use]
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for a in 0..n as u32 {
        for b in a + 1..n as u32 {
            edges.push((a, b));
        }
    }
    Graph::from_edges_named(n, &edges, &format!("K{n}"))
}

/// Star with center `0` and `n - 1` leaves.
#[must_use]
pub fn star(n: usize) -> Graph {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
    Graph::from_edges_named(n, &edges, &format!("star{n}"))
}

/// `K_2`, the factor graph of the hypercube (`PG_r` of `K_2` is the
/// `r`-dimensional binary hypercube).
#[must_use]
pub fn k2() -> Graph {
    Graph::from_edges_named(2, &[(0, 1)], "K2")
}

/// Complete binary tree with `levels ≥ 1` levels (`2^levels - 1` nodes),
/// nodes numbered in level order (heap layout: children of `v` are
/// `2v + 1`, `2v + 2`).
///
/// `PG_r` of this graph is the mesh-connected-trees network of Section 5.2.
#[must_use]
pub fn complete_binary_tree(levels: usize) -> Graph {
    assert!(levels >= 1);
    let n = (1usize << levels) - 1;
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for v in 1..n as u32 {
        edges.push(((v - 1) / 2, v));
    }
    Graph::from_edges_named(n, &edges, &format!("cbt{levels}"))
}

/// The Petersen graph (Fig. 16 of the paper): outer 5-cycle `0–4`, inner
/// 5-cycle (pentagram) `5–9`, spokes `i — i+5`.
#[must_use]
pub fn petersen() -> Graph {
    let mut edges = Vec::with_capacity(15);
    for i in 0..5u32 {
        edges.push((i, (i + 1) % 5)); // outer cycle
        edges.push((5 + i, 5 + (i + 2) % 5)); // inner pentagram
        edges.push((i, i + 5)); // spokes
    }
    Graph::from_edges_named(10, &edges, "petersen")
}

/// Binary de Bruijn graph `B(2, bits)` on `2^bits` nodes, undirected: node
/// `v` connects to `(2v) mod 2^bits` and `(2v + 1) mod 2^bits` (shift edges
/// in both directions; self-loops at `00…0` and `11…1` are dropped).
#[must_use]
pub fn de_bruijn(bits: usize) -> Graph {
    assert!(bits >= 1);
    let n = 1usize << bits;
    let mask = (n - 1) as u32;
    let mut edges = Vec::with_capacity(2 * n);
    for v in 0..n as u32 {
        edges.push((v, (v << 1) & mask));
        edges.push((v, ((v << 1) | 1) & mask));
    }
    Graph::from_edges_named(n, &edges, &format!("debruijn{bits}"))
}

/// Binary shuffle-exchange graph on `2^bits` nodes: *exchange* edges flip
/// the lowest bit, *shuffle* edges rotate left by one bit.
#[must_use]
pub fn shuffle_exchange(bits: usize) -> Graph {
    assert!(bits >= 1);
    let n = 1usize << bits;
    let mask = (n - 1) as u32;
    let mut edges = Vec::with_capacity(2 * n);
    for v in 0..n as u32 {
        edges.push((v, v ^ 1)); // exchange
        let shuffled = ((v << 1) & mask) | (v >> (bits - 1)); // rotate left
        edges.push((v, shuffled)); // shuffle
    }
    Graph::from_edges_named(n, &edges, &format!("shufflex{bits}"))
}

/// Generalized Petersen graph `GP(n, k)`: outer cycle `0 … n-1`, inner
/// nodes `n … 2n-1` connected as `n+i — n+((i+k) mod n)`, spokes
/// `i — n+i`. `GP(5, 2)` is the Petersen graph.
///
/// # Panics
///
/// Panics unless `n ≥ 3` and `1 ≤ k < n/2` (the standard validity range,
/// which keeps the graph simple and 3-regular).
#[must_use]
pub fn generalized_petersen(n: usize, k: usize) -> Graph {
    assert!(n >= 3 && k >= 1 && 2 * k < n, "GP(n,k) needs 1 ≤ k < n/2");
    let n32 = n as u32;
    let mut edges = Vec::with_capacity(3 * n);
    for i in 0..n32 {
        edges.push((i, (i + 1) % n32));
        edges.push((n32 + i, n32 + (i + k as u32) % n32));
        edges.push((i, n32 + i));
    }
    Graph::from_edges_named(2 * n, &edges, &format!("gp{n}_{k}"))
}

/// Circulant graph `C_n(offsets)`: node `v` connects to `v ± s (mod n)`
/// for every offset `s`.
///
/// # Panics
///
/// Panics if an offset is 0 or ≥ n.
#[must_use]
pub fn circulant(n: usize, offsets: &[usize]) -> Graph {
    let mut edges = Vec::with_capacity(n * offsets.len());
    for &s in offsets {
        assert!(s >= 1 && s < n, "offset {s} out of range");
        for v in 0..n as u32 {
            edges.push((v, (v + s as u32) % n as u32));
        }
    }
    Graph::from_edges_named(n, &edges, &format!("circ{n}x{}", offsets.len()))
}

/// Complete bipartite graph `K_{a,b}`: nodes `0 … a-1` vs `a … a+b-1`.
#[must_use]
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut edges = Vec::with_capacity(a * b);
    for x in 0..a as u32 {
        for y in 0..b as u32 {
            edges.push((x, a as u32 + y));
        }
    }
    Graph::from_edges_named(a + b, &edges, &format!("K{a}_{b}"))
}

/// Wheel `W_n`: a hub (node 0) connected to every node of an
/// `(n-1)`-cycle.
///
/// # Panics
///
/// Panics unless `n ≥ 4`.
#[must_use]
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "a wheel needs at least 4 nodes");
    let rim = (n - 1) as u32;
    let mut edges = Vec::with_capacity(2 * (n - 1));
    for i in 0..rim {
        edges.push((0, 1 + i));
        edges.push((1 + i, 1 + (i + 1) % rim));
    }
    Graph::from_edges_named(n, &edges, &format!("wheel{n}"))
}

/// Two-dimensional grid graph `w × h` (as a *factor* graph — the paper's
/// products are built from arbitrary connected factors, grids included).
/// Node `(x, y)` has rank `y·w + x`.
#[must_use]
pub fn grid2d(w: usize, h: usize) -> Graph {
    let mut edges = Vec::with_capacity(2 * w * h);
    for y in 0..h {
        for x in 0..w {
            let v = (y * w + x) as u32;
            if x + 1 < w {
                edges.push((v, v + 1));
            }
            if y + 1 < h {
                edges.push((v, v + w as u32));
            }
        }
    }
    Graph::from_edges_named(w * h, &edges, &format!("grid{w}x{h}"))
}

/// A random connected graph: a random spanning tree plus `extra_edges`
/// random non-tree edges. Deterministic for a given seed.
#[must_use]
pub fn random_connected(n: usize, extra_edges: usize, seed: u64) -> Graph {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut rng);
    let mut edges = Vec::with_capacity(n - 1 + extra_edges);
    // Random tree: attach each node (after the first, in shuffled order) to
    // a uniformly random earlier node.
    for i in 1..n {
        let j = rng.random_range(0..i);
        edges.push((order[j], order[i]));
    }
    for _ in 0..extra_edges {
        let a = rng.random_range(0..n as u32);
        let b = rng.random_range(0..n as u32);
        if a != b {
            edges.push((a, b));
        }
    }
    Graph::from_edges_named(n, &edges, &format!("rand{n}s{seed}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    #[test]
    fn path_structure() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 4));
    }

    #[test]
    fn cycle_structure() {
        let g = cycle(6);
        assert_eq!(g.edge_count(), 6);
        assert!(g.has_edge(5, 0));
        assert!(g.degree_sequence().iter().all(|&d| d == 2));
    }

    #[test]
    fn complete_edge_count() {
        assert_eq!(complete(6).edge_count(), 15);
    }

    #[test]
    fn tree_structure() {
        let g = complete_binary_tree(3);
        assert_eq!(g.n(), 7);
        assert_eq!(g.edge_count(), 6);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 6));
        assert!(is_connected(&g));
    }

    #[test]
    fn petersen_is_3_regular_with_15_edges() {
        let g = petersen();
        assert_eq!(g.n(), 10);
        assert_eq!(g.edge_count(), 15);
        assert!(g.degree_sequence().iter().all(|&d| d == 3));
        // Petersen has girth 5: no triangles through node 0.
        for &a in g.neighbors(0) {
            for &b in g.neighbors(0) {
                if a < b {
                    assert!(!g.has_edge(a, b), "triangle {a}-{b}");
                }
            }
        }
    }

    #[test]
    fn de_bruijn_connected_and_bounded_degree() {
        for bits in 1..=6 {
            let g = de_bruijn(bits);
            assert_eq!(g.n(), 1 << bits);
            assert!(is_connected(&g));
            assert!(g.max_degree() <= 4);
        }
    }

    #[test]
    fn shuffle_exchange_connected_and_bounded_degree() {
        for bits in 2..=6 {
            let g = shuffle_exchange(bits);
            assert!(is_connected(&g));
            assert!(g.max_degree() <= 3, "SE degree ≤ 3, got {}", g.max_degree());
        }
    }

    #[test]
    fn random_connected_is_connected_and_deterministic() {
        for seed in 0..8 {
            let g = random_connected(17, 5, seed);
            assert!(is_connected(&g));
            let h = random_connected(17, 5, seed);
            let ge: Vec<_> = g.edges().collect();
            let he: Vec<_> = h.edges().collect();
            assert_eq!(ge, he, "same seed must give same graph");
        }
    }

    #[test]
    fn star_is_connected_tree() {
        let g = star(9);
        assert_eq!(g.edge_count(), 8);
        assert!(is_connected(&g));
        assert_eq!(g.degree(0), 8);
    }

    #[test]
    fn gp_5_2_is_the_petersen_graph() {
        let gp = generalized_petersen(5, 2);
        let p = petersen();
        assert_eq!(gp.n(), p.n());
        assert_eq!(gp.edge_count(), p.edge_count());
        // Identical adjacency under the shared labeling convention.
        for a in 0..10u32 {
            for b in 0..10u32 {
                assert_eq!(gp.has_edge(a, b), p.has_edge(a, b), "({a},{b})");
            }
        }
    }

    #[test]
    fn generalized_petersen_is_3_regular() {
        for (n, k) in [(7usize, 2usize), (8, 3), (11, 4)] {
            let g = generalized_petersen(n, k);
            assert!(g.degree_sequence().iter().all(|&d| d == 3), "GP({n},{k})");
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn circulant_structure() {
        let g = circulant(8, &[1, 3]);
        assert!(is_connected(&g));
        assert!(g.degree_sequence().iter().all(|&d| d == 4));
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(0, 5)); // 0 - 3 backwards
        assert!(!g.has_edge(0, 2));
        // Offset n/2 gives degree 3 (self-paired), still valid.
        let h = circulant(6, &[3]);
        assert!(h.degree_sequence().iter().all(|&d| d == 1));
    }

    #[test]
    fn complete_bipartite_structure() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.edge_count(), 12);
        assert!(g.has_edge(0, 3));
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(3, 4));
        assert!(is_connected(&g));
    }

    #[test]
    fn wheel_structure() {
        let g = wheel(6);
        assert_eq!(g.edge_count(), 10); // 5 spokes + 5 rim
        assert_eq!(g.degree(0), 5);
        assert!(is_connected(&g));
    }

    #[test]
    fn grid2d_structure() {
        let g = grid2d(3, 2);
        assert_eq!(g.n(), 6);
        assert_eq!(g.edge_count(), 7); // 2*2 horizontal + 3 vertical
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 3));
        assert!(!g.has_edge(2, 3)); // row wrap
        assert!(is_connected(&g));
    }
}
