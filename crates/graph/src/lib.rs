//! Factor-graph substrate for product-network sorting.
//!
//! A homogeneous product network `PG_r` (Definition 1 of Fernández & Efe) is
//! built from an arbitrary connected *factor graph* `G` with `N` nodes. This
//! crate provides everything the algorithm needs from `G`:
//!
//! * the graph structure itself and standard constructions ([`Graph`],
//!   [`factories`]),
//! * BFS-based traversal, distances, diameter ([`traversal`]),
//! * Hamiltonian-path search — Section 2 recommends labeling the factor
//!   nodes along a Hamiltonian path when one exists ([`hamiltonian`]),
//! * the dilation-3 linear-array embedding that exists in *every* connected
//!   graph (Sekanina's theorem; used by the paper for non-Hamiltonian
//!   factors and by the Corollary's torus emulation) ([`embedding`]),
//! * a synchronous store-and-forward router used to execute and cost the
//!   permutation-routing steps `R(N)` of the odd-even transpositions
//!   ([`routing`]).

pub mod embedding;
pub mod factories;
pub mod graph;
pub mod hamiltonian;
pub mod render;
pub mod routing;
pub mod traversal;

pub use embedding::LinearEmbedding;
pub use graph::Graph;
pub use hamiltonian::{hamiltonian_cycle, hamiltonian_path};
pub use render::{adjacency_table, to_dot};
pub use routing::{route_compare_exchange, RoutingOutcome, SyncRouter};
pub use traversal::{bfs_distances, diameter, is_connected, shortest_path, spanning_tree};
