//! Breadth-first traversal, distances, diameter, and spanning trees.

use crate::graph::Graph;
use std::collections::VecDeque;

/// BFS distances from `src` to every node; `u32::MAX` marks unreachable
/// nodes.
#[must_use]
pub fn bfs_distances(g: &Graph, src: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n()];
    let mut q = VecDeque::new();
    dist[src as usize] = 0;
    q.push_back(src);
    while let Some(v) = q.pop_front() {
        let dv = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = dv + 1;
                q.push_back(w);
            }
        }
    }
    dist
}

/// `true` iff the graph is connected (vacuously true for `n ≤ 1`).
#[must_use]
pub fn is_connected(g: &Graph) -> bool {
    if g.n() <= 1 {
        return true;
    }
    bfs_distances(g, 0).iter().all(|&d| d != u32::MAX)
}

/// Graph-theoretic distance between `a` and `b`, or `None` if disconnected.
#[must_use]
pub fn distance(g: &Graph, a: u32, b: u32) -> Option<u32> {
    let d = bfs_distances(g, a)[b as usize];
    (d != u32::MAX).then_some(d)
}

/// A shortest path from `src` to `dst` (inclusive of both endpoints), or
/// `None` if disconnected. Ties broken toward lower node ids.
#[must_use]
pub fn shortest_path(g: &Graph, src: u32, dst: u32) -> Option<Vec<u32>> {
    let dist = bfs_distances(g, dst);
    if dist[src as usize] == u32::MAX {
        return None;
    }
    let mut path = vec![src];
    let mut cur = src;
    while cur != dst {
        let dc = dist[cur as usize];
        let next = g
            .neighbors(cur)
            .iter()
            .copied()
            .find(|&w| dist[w as usize] + 1 == dc)
            .expect("BFS distance field must decrease toward dst");
        path.push(next);
        cur = next;
    }
    Some(path)
}

/// Diameter of a connected graph (all-pairs via per-node BFS).
///
/// # Panics
///
/// Panics if the graph is disconnected.
#[must_use]
pub fn diameter(g: &Graph) -> u32 {
    let mut best = 0;
    for v in 0..g.n() as u32 {
        let d = bfs_distances(g, v);
        for &x in &d {
            assert!(x != u32::MAX, "diameter of a disconnected graph");
            best = best.max(x);
        }
    }
    best
}

/// BFS spanning tree rooted at `root`: `parent[v]` is the tree parent,
/// `parent[root] = root`.
///
/// # Panics
///
/// Panics if the graph is disconnected.
#[must_use]
pub fn spanning_tree(g: &Graph, root: u32) -> Vec<u32> {
    let mut parent = vec![u32::MAX; g.n()];
    let mut q = VecDeque::new();
    parent[root as usize] = root;
    q.push_back(root);
    while let Some(v) = q.pop_front() {
        for &w in g.neighbors(v) {
            if parent[w as usize] == u32::MAX {
                parent[w as usize] = v;
                q.push_back(w);
            }
        }
    }
    assert!(
        parent.iter().all(|&p| p != u32::MAX),
        "spanning tree of a disconnected graph"
    );
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factories;

    #[test]
    fn distances_on_path() {
        let g = factories::path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(distance(&g, 4, 1), Some(3));
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&factories::cycle(6)));
        let disconnected = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!is_connected(&disconnected));
        assert_eq!(distance(&disconnected, 0, 3), None);
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = factories::cycle(8);
        let p = shortest_path(&g, 0, 3).unwrap();
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&3));
        assert_eq!(p.len(), 4);
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn diameters_of_known_graphs() {
        assert_eq!(diameter(&factories::path(7)), 6);
        assert_eq!(diameter(&factories::cycle(8)), 4);
        assert_eq!(diameter(&factories::complete(5)), 1);
        assert_eq!(diameter(&factories::petersen()), 2);
    }

    #[test]
    fn spanning_tree_is_a_tree() {
        let g = factories::petersen();
        let parent = spanning_tree(&g, 0);
        assert_eq!(parent[0], 0);
        // Every non-root reaches the root by following parents.
        for v in 1..g.n() as u32 {
            let mut cur = v;
            let mut hops = 0;
            while cur != 0 {
                let p = parent[cur as usize];
                assert!(g.has_edge(cur, p), "tree edges must be graph edges");
                cur = p;
                hops += 1;
                assert!(hops <= g.n(), "cycle in parent pointers");
            }
        }
    }
}
