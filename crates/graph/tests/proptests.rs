//! Property-based tests for the graph substrate on random connected
//! graphs.

use pns_graph::embedding::{measure_dilation, sekanina_order, LinearEmbedding};
use pns_graph::hamiltonian::{hamiltonian_path, is_hamiltonian_path};
use pns_graph::routing::{route_compare_exchange, SyncRouter};
use pns_graph::traversal::{bfs_distances, diameter, is_connected, shortest_path, spanning_tree};
use pns_graph::{factories, Graph};
use proptest::prelude::*;

fn random_graph() -> impl Strategy<Value = Graph> {
    (3usize..20, 0usize..8, any::<u64>())
        .prop_map(|(n, extra, seed)| factories::random_connected(n, extra, seed))
}

proptest! {
    #[test]
    fn random_connected_graphs_are_connected(g in random_graph()) {
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn bfs_distances_satisfy_triangle_on_edges(g in random_graph()) {
        let d0 = bfs_distances(&g, 0);
        for (a, b) in g.edges() {
            let (da, db) = (d0[a as usize], d0[b as usize]);
            prop_assert!(da.abs_diff(db) <= 1, "edge endpoints differ by more than 1");
        }
    }

    #[test]
    fn shortest_paths_have_bfs_length(g in random_graph(), seed in any::<u64>()) {
        let n = g.n() as u64;
        let (src, dst) = ((seed % n) as u32, ((seed / n) % n) as u32);
        let path = shortest_path(&g, src, dst).expect("connected");
        prop_assert_eq!(path.len() as u32 - 1, bfs_distances(&g, src)[dst as usize]);
        for w in path.windows(2) {
            prop_assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn spanning_tree_edges_are_graph_edges(g in random_graph()) {
        let parent = spanning_tree(&g, 0);
        for v in 1..g.n() as u32 {
            prop_assert!(g.has_edge(v, parent[v as usize]));
        }
    }

    #[test]
    fn sekanina_order_has_dilation_at_most_three(g in random_graph()) {
        let order = sekanina_order(&g);
        prop_assert_eq!(order.len(), g.n());
        prop_assert!(measure_dilation(&g, &order) <= 3);
    }

    #[test]
    fn best_embedding_bounds(g in random_graph()) {
        let emb = LinearEmbedding::best(&g);
        prop_assert!(emb.dilation <= 3);
        let pos = emb.positions();
        for (i, &v) in emb.order.iter().enumerate() {
            prop_assert_eq!(pos[v as usize] as usize, i);
        }
    }

    #[test]
    fn found_hamiltonian_paths_verify(g in random_graph()) {
        if let Some(p) = hamiltonian_path(&g) {
            prop_assert!(is_hamiltonian_path(&g, &p));
        }
    }

    #[test]
    fn router_delivers_random_permutation(g in random_graph(), seed in any::<u64>()) {
        let n = g.n();
        // A pseudo-random permutation via seeded rotation composition.
        let shift = (seed as usize) % n;
        let msgs: Vec<(u32, u32)> = (0..n)
            .map(|v| (v as u32, ((v + shift) % n) as u32))
            .collect();
        let out = SyncRouter::new(&g).route(&msgs);
        // Any permutation routes within n * diameter rounds (loose bound).
        prop_assert!(out.rounds <= (n as u32) * diameter(&g).max(1));
    }

    #[test]
    fn compare_exchange_pairs_route(g in random_graph(), seed in any::<u64>()) {
        // Pair up distinct nodes (disjoint) and route their exchange.
        let n = g.n() as u32;
        let a = (seed % n as u64) as u32;
        let b = ((seed >> 16) % n as u64) as u32;
        prop_assume!(a != b);
        let out = route_compare_exchange(&g, &[(a, b)]);
        let dist = bfs_distances(&g, a)[b as usize];
        prop_assert!(out.rounds >= dist, "cannot beat distance");
        prop_assert!(out.rounds <= 2 * dist.max(1), "two-way exchange within 2d");
    }
}
