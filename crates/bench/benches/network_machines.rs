//! Wall-clock benches of the network simulator (E14): charged machines
//! across the Section 5 networks (grid, hypercube, torus, Petersen,
//! de Bruijn) and the executed engine on grid and hypercube.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pns_graph::factories;
use pns_simulator::{CostModel, Hypercube2Sorter, Machine, ShearSorter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_keys(len: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.random_range(0..1_000_000)).collect()
}

fn bench_charged_machines(c: &mut Criterion) {
    let mut group = c.benchmark_group("charged_machine");
    let cases: Vec<(&str, pns_graph::Graph, usize, CostModel)> = vec![
        (
            "grid_16x16x16",
            factories::path(16),
            3,
            CostModel::paper_grid(16),
        ),
        (
            "torus_16^3",
            factories::cycle(16),
            3,
            CostModel::paper_torus(16),
        ),
        (
            "hypercube_r12",
            factories::k2(),
            12,
            CostModel::paper_hypercube(),
        ),
        (
            "petersen_sq",
            factories::petersen(),
            3,
            CostModel::paper_petersen(),
        ),
        (
            "debruijn_8^3",
            factories::de_bruijn(3),
            3,
            CostModel::paper_de_bruijn(3),
        ),
    ];
    for (name, factor, r, model) in cases {
        let len = (factor.n() as u64).pow(r as u32);
        let keys = random_keys(len, 5);
        group.bench_with_input(BenchmarkId::new("sort", name), &keys, |b, keys| {
            b.iter(|| {
                let mut m = Machine::charged(&factor, r, model.clone());
                let rep = m.sort(black_box(keys.clone())).expect("key count");
                black_box(rep.steps())
            });
        });
    }
    group.finish();
}

fn bench_executed_machines(c: &mut Criterion) {
    let mut group = c.benchmark_group("executed_machine");
    {
        let factor = factories::path(8);
        let keys = random_keys(512, 9);
        group.bench_function("grid_shearsort_8^3", |b| {
            b.iter(|| {
                let mut m = Machine::executed(&factor, 3, &ShearSorter);
                let rep = m.sort(black_box(keys.clone())).expect("key count");
                black_box(rep.steps())
            });
        });
    }
    {
        let factor = factories::k2();
        let keys = random_keys(1024, 10);
        group.bench_function("hypercube_3step_r10", |b| {
            b.iter(|| {
                let mut m = Machine::executed(&factor, 10, &Hypercube2Sorter);
                let rep = m.sort(black_box(keys.clone())).expect("key count");
                black_box(rep.steps())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_charged_machines, bench_executed_machines);
criterion_main!(benches);
