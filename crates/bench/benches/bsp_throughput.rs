//! Wall-clock benches for the batched BSP executor (E16) and the flat
//! kernel tier (E19): serial vs parallel single-vector execution,
//! batched throughput as the batch grows, interpreter vs lowered
//! kernel, compile-from-scratch vs program-cache hit, and the
//! optimized program against the raw compile.
//!
//! Groups share one set of compiled + lowered fixtures (built once in a
//! `OnceLock`) so criterion timing never includes compilation and every
//! group benches the *same* program bytes. The only intentional
//! exception is `program_cache/compile_cold`, whose subject *is* the
//! compile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pns_graph::{factories, Graph};
use pns_simulator::bsp::{BspMachine, CompiledProgram};
use pns_simulator::{
    compile, BitScratch, ExecScratch, Hypercube2Sorter, KernelProgram, Machine, ProgramCache,
    ScratchPool, ShearSorter, VerticalPool, VerticalProgram,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::OnceLock;

fn random_keys(len: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.random_range(0..1_000_000)).collect()
}

/// Everything the groups execute, compiled and lowered exactly once.
struct Fixtures {
    /// Relabeled Petersen graph, squared: the batched-throughput shape.
    petersen: Graph,
    petersen_program: CompiledProgram,
    petersen_kernel: KernelProgram,
    petersen_vertical: VerticalProgram,
    /// 3-ary 3-cube (`path(3)`, r = 3): the E19 kernel-speedup shape.
    cube3: Graph,
    cube3_program: CompiledProgram,
    cube3_kernel: KernelProgram,
    /// 10-cube: the single-vector parallel-threshold shape.
    k2: Graph,
    k2_program: CompiledProgram,
    k2_optimized: CompiledProgram,
}

fn fixtures() -> &'static Fixtures {
    static FIXTURES: OnceLock<Fixtures> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let petersen = Machine::prepare_factor(&factories::petersen());
        let petersen_program = compile(&petersen, 2, &ShearSorter);
        let petersen_kernel = BspMachine::new(&petersen, 2)
            .lower(&petersen_program)
            .expect("petersen program validates");
        let petersen_vertical = BspMachine::new(&petersen, 2)
            .lower_vertical(&petersen_program)
            .expect("petersen program validates");
        let cube3 = factories::path(3);
        let cube3_program = compile(&cube3, 3, &ShearSorter);
        let cube3_kernel = BspMachine::new(&cube3, 3)
            .lower(&cube3_program)
            .expect("cube program validates");
        let k2 = factories::k2();
        let k2_program = compile(&k2, 10, &Hypercube2Sorter);
        let k2_optimized = k2_program.optimized();
        Fixtures {
            petersen,
            petersen_program,
            petersen_kernel,
            petersen_vertical,
            cube3,
            cube3_program,
            cube3_kernel,
            k2,
            k2_program,
            k2_optimized,
        }
    })
}

fn bench_single_vector(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsp_single");
    let fx = fixtures();
    let r = 10; // 1024 nodes: past PAR_THRESHOLD, rounds go parallel.
    let bsp = BspMachine::new(&fx.k2, r);
    let keys = random_keys(1 << r, 7);
    group.bench_function("serial_run", |b| {
        b.iter(|| {
            let mut k = keys.clone();
            bsp.run(&mut k, black_box(&fx.k2_program));
            black_box(k)
        });
    });
    group.bench_function("parallel_run", |b| {
        b.iter(|| {
            let mut k = keys.clone();
            bsp.run_parallel(&mut k, black_box(&fx.k2_program));
            black_box(k)
        });
    });
    group.bench_function("parallel_run_optimized", |b| {
        b.iter(|| {
            let mut k = keys.clone();
            bsp.run_parallel(&mut k, black_box(&fx.k2_optimized));
            black_box(k)
        });
    });
    group.finish();
}

fn bench_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsp_batch");
    let fx = fixtures();
    let bsp = BspMachine::new(&fx.petersen, 2);
    let len = 100u64;
    for batch_size in [1usize, 4, 16, 64] {
        let batch: Vec<Vec<u64>> = (0..batch_size as u64)
            .map(|s| random_keys(len, 11 + s))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("run_batch", batch_size),
            &batch,
            |b, batch| {
                b.iter(|| {
                    let mut batch = batch.clone();
                    black_box(bsp.run_batch(&mut batch, &fx.petersen_program));
                    black_box(batch)
                });
            },
        );
        let mut pool = ScratchPool::new();
        group.bench_with_input(
            BenchmarkId::new("run_kernel_batch", batch_size),
            &batch,
            |b, batch| {
                b.iter(|| {
                    let mut batch = batch.clone();
                    black_box(bsp.run_kernel_batch(&mut batch, &fx.petersen_kernel, &mut pool));
                    black_box(batch)
                });
            },
        );
    }
    group.finish();
}

/// Interpreter vs lowered kernel on the E19 reference workload: the
/// 3-ary 3-cube, single vectors and a 16-vector batch. The acceptance
/// bar (ISSUE 5) is kernel ≥ 1.5× over `run_parallel` here — the
/// kernel skips per-run validation, allocates nothing after warm-up,
/// and dispatches each round on a one-byte class tag.
fn bench_kernel_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_speedup");
    let fx = fixtures();
    let bsp = BspMachine::new(&fx.cube3, 3);
    let len = fx.cube3_kernel.shape().len();
    let keys = random_keys(len, 41);

    group.bench_function("interpreter_run_parallel", |b| {
        b.iter(|| {
            let mut k = keys.clone();
            bsp.run_parallel(&mut k, black_box(&fx.cube3_program));
            black_box(k)
        });
    });
    let mut scratch = ExecScratch::new();
    group.bench_function("kernel_run", |b| {
        b.iter(|| {
            let mut k = keys.clone();
            bsp.run_kernel(&mut k, black_box(&fx.cube3_kernel), &mut scratch);
            black_box(k)
        });
    });

    let batch: Vec<Vec<u64>> = (0..16u64).map(|s| random_keys(len, 43 + s)).collect();
    group.bench_function("interpreter_run_batch_16", |b| {
        b.iter(|| {
            let mut batch = batch.clone();
            black_box(bsp.run_batch(&mut batch, &fx.cube3_program));
            black_box(batch)
        });
    });
    let mut pool = ScratchPool::new();
    group.bench_function("kernel_run_batch_16", |b| {
        b.iter(|| {
            let mut batch = batch.clone();
            black_box(bsp.run_kernel_batch(&mut batch, &fx.cube3_kernel, &mut pool));
            black_box(batch)
        });
    });
    group.finish();
}

/// Observability tax on the batched hot path. `run_batch` with the
/// default (disabled) logger must stay within noise of the seed's
/// uninstrumented numbers — the disabled `EventLogger` is one branch,
/// and the per-vector inner loops are not instrumented at all. The
/// `memory_sink` variant shows the cost of actually enabling tracing
/// (one `Validate` + one `BatchScheduled` event per batch).
fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    let fx = fixtures();
    let batch: Vec<Vec<u64>> = (0..16).map(|s| random_keys(100, 23 + s)).collect();

    let bsp = BspMachine::new(&fx.petersen, 2);
    group.bench_function("run_batch_disabled_logger", |b| {
        b.iter(|| {
            let mut batch = batch.clone();
            black_box(bsp.run_batch(&mut batch, &fx.petersen_program));
            black_box(batch)
        });
    });

    let mut traced = BspMachine::new(&fx.petersen, 2);
    let (sink, _reader) = pns_obs::MemorySink::with_capacity(1 << 20);
    traced.attach_logger(pns_obs::EventLogger::new(Box::new(sink)));
    group.bench_function("run_batch_memory_sink", |b| {
        b.iter(|| {
            let mut batch = batch.clone();
            black_box(traced.run_batch(&mut batch, &fx.petersen_program));
            black_box(batch)
        });
    });

    // The span-layer tax on the hot tiers. The `disabled` variants are
    // the baseline (a disabled logger's span() is one branch, no clock
    // read — the <2% bar); the `summary`/`profile` variants price an
    // actually-attached aggregating sink (<5% bar). Round events and
    // spans on these tiers gate on ROUND_OBS_MIN_OPS, which is what
    // keeps the enabled tax bounded on small-round programs.
    let keys = random_keys(27, 41);
    let kernel_machine = BspMachine::new(&fx.cube3, 3);
    let mut scratch = ExecScratch::new();
    group.bench_function("kernel_run_disabled", |b| {
        b.iter(|| {
            let mut k = keys.clone();
            black_box(kernel_machine.run_kernel(&mut k, &fx.cube3_kernel, &mut scratch));
            black_box(k)
        });
    });
    for (name, sink) in [
        (
            "kernel_run_summary",
            Box::new(pns_obs::SummarySink::new("bench")) as Box<dyn pns_obs::Sink>,
        ),
        (
            "kernel_run_profile",
            Box::new(pns_obs::ProfileSink::new("bench", None)),
        ),
    ] {
        let mut traced = BspMachine::new(&fx.cube3, 3);
        traced.attach_logger(pns_obs::EventLogger::new(sink));
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut k = keys.clone();
                black_box(traced.run_kernel(&mut k, &fx.cube3_kernel, &mut scratch));
                black_box(k)
            });
        });
    }

    let words: Vec<u64> = random_keys(100, 43);
    let bits_machine = BspMachine::new(&fx.petersen, 2);
    let mut bits = BitScratch::new();
    group.bench_function("vertical_bits_disabled", |b| {
        b.iter(|| {
            let mut w = words.clone();
            black_box(bits_machine.run_vertical_bits(&mut w, &fx.petersen_vertical, &mut bits));
            black_box(w)
        });
    });
    for (name, sink) in [
        (
            "vertical_bits_summary",
            Box::new(pns_obs::SummarySink::new("bench")) as Box<dyn pns_obs::Sink>,
        ),
        (
            "vertical_bits_profile",
            Box::new(pns_obs::ProfileSink::new("bench", None)),
        ),
    ] {
        let mut traced = BspMachine::new(&fx.petersen, 2);
        traced.attach_logger(pns_obs::EventLogger::new(sink));
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut w = words.clone();
                black_box(traced.run_vertical_bits(&mut w, &fx.petersen_vertical, &mut bits));
                black_box(w)
            });
        });
    }
    group.finish();
}

/// Fault-layer tax on the batched hot path. With a disabled
/// `FaultPlan`, `run_batch_with_faults` takes a fast path with no
/// decision hashing, no checkpoints, and no certificate checks, so it
/// must stay within noise (the acceptance bar is < 2%) of plain
/// `run_batch`. The enabled variants price the actual defenses at a
/// realistic rate (1 fault per 1000 sites).
fn bench_fault_overhead(c: &mut Criterion) {
    use pns_simulator::{FaultPlan, RetryPolicy};
    let mut group = c.benchmark_group("fault_overhead");
    let fx = fixtures();
    let batch: Vec<Vec<u64>> = (0..16).map(|s| random_keys(100, 31 + s)).collect();
    let bsp = BspMachine::new(&fx.petersen, 2);
    let policy = RetryPolicy::default();

    group.bench_function("run_batch_plain", |b| {
        b.iter(|| {
            let mut batch = batch.clone();
            black_box(bsp.run_batch(&mut batch, &fx.petersen_program));
            black_box(batch)
        });
    });

    let disabled = FaultPlan::disabled();
    group.bench_function("run_batch_faults_disabled", |b| {
        b.iter(|| {
            let mut batch = batch.clone();
            black_box(bsp.run_batch_with_faults(
                &mut batch,
                &fx.petersen_program,
                &disabled,
                &policy,
            ));
            black_box(batch)
        });
    });

    let enabled = FaultPlan::random(5, 1_000);
    group.bench_function("run_batch_faults_rate_1000", |b| {
        b.iter(|| {
            let mut batch = batch.clone();
            black_box(bsp.run_batch_with_faults(
                &mut batch,
                &fx.petersen_program,
                &enabled,
                &policy,
            ));
            black_box(batch)
        });
    });
    group.finish();
}

/// The E20 bar: bit-sliced vertical execution against the flat kernel
/// batch on 64-lane workloads of the petersen-squared shape (100
/// nodes). `vertical_bits` packs the 64 0/1 lanes into one u64 word
/// per node and replaces 64 compare-exchanges with one AND/OR pair;
/// the acceptance bar (ISSUE 6) is ≥ 4× over `run_kernel_batch` on
/// the same 0/1 batch. `vertical_batch` prices the full-key column
/// path (swap-on-mask, no word-level parallelism) on both 0/1 and
/// general keys for comparison.
fn bench_vertical_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertical_speedup");
    let fx = fixtures();
    let bsp = BspMachine::new(&fx.petersen, 2);
    let len = fx.petersen_kernel.shape().len();

    // One packed word block: bit l of words[i] is lane l's 0/1 key at
    // node i — 64 random 0/1 lanes in `len` words.
    let mut rng = StdRng::seed_from_u64(59);
    let words: Vec<u64> = (0..len).map(|_| rng.random_range(0..u64::MAX)).collect();
    let batch01: Vec<Vec<u64>> = (0..64)
        .map(|l| (0..len as usize).map(|i| (words[i] >> l) & 1).collect())
        .collect();

    let mut pool = ScratchPool::new();
    group.bench_function("kernel_batch_64x_zero_one", |b| {
        b.iter(|| {
            let mut batch = batch01.clone();
            black_box(bsp.run_kernel_batch(&mut batch, &fx.petersen_kernel, &mut pool));
            black_box(batch)
        });
    });
    let mut bits = BitScratch::new();
    group.bench_function("vertical_bits_64x_zero_one", |b| {
        b.iter(|| {
            let mut w = words.clone();
            black_box(bsp.run_vertical_bits(&mut w, &fx.petersen_vertical, &mut bits));
            black_box(w)
        });
    });
    let mut vpool = VerticalPool::new();
    group.bench_function("vertical_batch_64x_zero_one", |b| {
        b.iter(|| {
            let mut batch = batch01.clone();
            black_box(bsp.run_vertical_batch(&mut batch, &fx.petersen_vertical, &mut vpool));
            black_box(batch)
        });
    });

    let full: Vec<Vec<u64>> = (0..64u64).map(|s| random_keys(len, 61 + s)).collect();
    group.bench_function("kernel_batch_64x_full_keys", |b| {
        b.iter(|| {
            let mut batch = full.clone();
            black_box(bsp.run_kernel_batch(&mut batch, &fx.petersen_kernel, &mut pool));
            black_box(batch)
        });
    });
    group.bench_function("vertical_batch_64x_full_keys", |b| {
        b.iter(|| {
            let mut batch = full.clone();
            black_box(bsp.run_vertical_batch(&mut batch, &fx.petersen_vertical, &mut vpool));
            black_box(batch)
        });
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("program_cache");
    let factor = factories::k2();
    let r = 8;
    // Intentionally *not* a fixture: the subject is the compile itself.
    group.bench_function("compile_cold", |b| {
        b.iter(|| black_box(compile(&factor, r, &Hypercube2Sorter)));
    });
    let cache = ProgramCache::new();
    let _warm = cache.get_or_compile(&factor, r, &Hypercube2Sorter);
    group.bench_function("cache_hit", |b| {
        b.iter(|| black_box(cache.get_or_compile(&factor, r, &Hypercube2Sorter)));
    });
    let _warm_kernel = cache.get_or_compile_kernel(&factor, r, &Hypercube2Sorter);
    group.bench_function("kernel_cache_hit", |b| {
        b.iter(|| black_box(cache.get_or_compile_kernel(&factor, r, &Hypercube2Sorter)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_vector,
    bench_batched,
    bench_kernel_speedup,
    bench_obs_overhead,
    bench_fault_overhead,
    bench_vertical_speedup,
    bench_cache
);
criterion_main!(benches);
