//! Wall-clock benches for the batched BSP executor (E16): serial vs
//! parallel single-vector execution, batched throughput as the batch
//! grows, compile-from-scratch vs program-cache hit, and the optimized
//! program against the raw compile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pns_graph::factories;
use pns_simulator::bsp::BspMachine;
use pns_simulator::{compile, Hypercube2Sorter, Machine, ProgramCache, ShearSorter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_keys(len: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.random_range(0..1_000_000)).collect()
}

fn bench_single_vector(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsp_single");
    let factor = factories::k2();
    let r = 10; // 1024 nodes: past PAR_THRESHOLD, rounds go parallel.
    let bsp = BspMachine::new(&factor, r);
    let program = compile(&factor, r, &Hypercube2Sorter);
    let optimized = program.optimized();
    let keys = random_keys(1 << r, 7);
    group.bench_function("serial_run", |b| {
        b.iter(|| {
            let mut k = keys.clone();
            bsp.run(&mut k, black_box(&program));
            black_box(k)
        });
    });
    group.bench_function("parallel_run", |b| {
        b.iter(|| {
            let mut k = keys.clone();
            bsp.run_parallel(&mut k, black_box(&program));
            black_box(k)
        });
    });
    group.bench_function("parallel_run_optimized", |b| {
        b.iter(|| {
            let mut k = keys.clone();
            bsp.run_parallel(&mut k, black_box(&optimized));
            black_box(k)
        });
    });
    group.finish();
}

fn bench_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsp_batch");
    let factor = Machine::prepare_factor(&factories::petersen());
    let r = 2; // 100 nodes per vector.
    let bsp = BspMachine::new(&factor, r);
    let program = compile(&factor, r, &ShearSorter);
    let len = 100u64;
    for batch_size in [1usize, 4, 16, 64] {
        let batch: Vec<Vec<u64>> = (0..batch_size as u64)
            .map(|s| random_keys(len, 11 + s))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("run_batch", batch_size),
            &batch,
            |b, batch| {
                b.iter(|| {
                    let mut batch = batch.clone();
                    black_box(bsp.run_batch(&mut batch, &program));
                    black_box(batch)
                });
            },
        );
    }
    group.finish();
}

/// Observability tax on the batched hot path. `run_batch` with the
/// default (disabled) logger must stay within noise of the seed's
/// uninstrumented numbers — the disabled `EventLogger` is one branch,
/// and the per-vector inner loops are not instrumented at all. The
/// `memory_sink` variant shows the cost of actually enabling tracing
/// (one `Validate` + one `BatchScheduled` event per batch).
fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    let factor = Machine::prepare_factor(&factories::petersen());
    let r = 2;
    let program = compile(&factor, r, &ShearSorter);
    let batch: Vec<Vec<u64>> = (0..16).map(|s| random_keys(100, 23 + s)).collect();

    let bsp = BspMachine::new(&factor, r);
    group.bench_function("run_batch_disabled_logger", |b| {
        b.iter(|| {
            let mut batch = batch.clone();
            black_box(bsp.run_batch(&mut batch, &program));
            black_box(batch)
        });
    });

    let mut traced = BspMachine::new(&factor, r);
    let (sink, _reader) = pns_obs::MemorySink::with_capacity(1 << 20);
    traced.attach_logger(pns_obs::EventLogger::new(Box::new(sink)));
    group.bench_function("run_batch_memory_sink", |b| {
        b.iter(|| {
            let mut batch = batch.clone();
            black_box(traced.run_batch(&mut batch, &program));
            black_box(batch)
        });
    });
    group.finish();
}

/// Fault-layer tax on the batched hot path. With a disabled
/// `FaultPlan`, `run_batch_with_faults` takes a fast path with no
/// decision hashing, no checkpoints, and no certificate checks, so it
/// must stay within noise (the acceptance bar is < 2%) of plain
/// `run_batch`. The enabled variants price the actual defenses at a
/// realistic rate (1 fault per 1000 sites).
fn bench_fault_overhead(c: &mut Criterion) {
    use pns_simulator::{FaultPlan, RetryPolicy};
    let mut group = c.benchmark_group("fault_overhead");
    let factor = Machine::prepare_factor(&factories::petersen());
    let r = 2;
    let program = compile(&factor, r, &ShearSorter);
    let batch: Vec<Vec<u64>> = (0..16).map(|s| random_keys(100, 31 + s)).collect();
    let bsp = BspMachine::new(&factor, r);
    let policy = RetryPolicy::default();

    group.bench_function("run_batch_plain", |b| {
        b.iter(|| {
            let mut batch = batch.clone();
            black_box(bsp.run_batch(&mut batch, &program));
            black_box(batch)
        });
    });

    let disabled = FaultPlan::disabled();
    group.bench_function("run_batch_faults_disabled", |b| {
        b.iter(|| {
            let mut batch = batch.clone();
            black_box(bsp.run_batch_with_faults(&mut batch, &program, &disabled, &policy));
            black_box(batch)
        });
    });

    let enabled = FaultPlan::random(5, 1_000);
    group.bench_function("run_batch_faults_rate_1000", |b| {
        b.iter(|| {
            let mut batch = batch.clone();
            black_box(bsp.run_batch_with_faults(&mut batch, &program, &enabled, &policy));
            black_box(batch)
        });
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("program_cache");
    let factor = factories::k2();
    let r = 8;
    group.bench_function("compile_cold", |b| {
        b.iter(|| black_box(compile(&factor, r, &Hypercube2Sorter)));
    });
    let cache = ProgramCache::new();
    let _warm = cache.get_or_compile(&factor, r, &Hypercube2Sorter);
    group.bench_function("cache_hit", |b| {
        b.iter(|| black_box(cache.get_or_compile(&factor, r, &Hypercube2Sorter)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_vector,
    bench_batched,
    bench_obs_overhead,
    bench_fault_overhead,
    bench_cache
);
criterion_main!(benches);
