//! Wall-clock benches of the sequence-level algorithm (E14): the
//! generalized multiway-merge sort against std sort and Columnsort on the
//! same key counts, plus the merge primitive alone.
//!
//! These are throughput sanity checks for the implementation, not claims
//! about the paper's step model (which the experiment bins measure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pns_baselines::columnsort;
use pns_core::{multiway_merge, multiway_merge_sort, Counters, StdBaseSorter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_keys(len: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.random_range(0..1_000_000)).collect()
}

fn bench_full_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequence_sort");
    for (n, r) in [(3usize, 8usize), (4, 6), (8, 4)] {
        let len = n.pow(r as u32);
        let keys = random_keys(len, 11);
        group.bench_with_input(
            BenchmarkId::new("multiway_merge_sort", format!("N{n}_r{r}_{len}")),
            &keys,
            |b, keys| {
                b.iter(|| {
                    let (out, _) = multiway_merge_sort(black_box(keys), n, &StdBaseSorter);
                    black_box(out)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("std_sort_unstable", format!("N{n}_r{r}_{len}")),
            &keys,
            |b, keys| {
                b.iter(|| {
                    let mut v = keys.clone();
                    v.sort_unstable();
                    black_box(v)
                });
            },
        );
    }
    group.finish();
}

fn bench_merge_primitive(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiway_merge");
    for (n, k) in [(3usize, 5usize), (4, 4)] {
        let m = n.pow(k as u32 - 1);
        let inputs: Vec<Vec<u64>> = (0..n)
            .map(|u| {
                let mut v = random_keys(m, u as u64);
                v.sort_unstable();
                v
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("merge", format!("N{n}_k{k}")),
            &inputs,
            |b, inputs| {
                b.iter(|| {
                    let mut counters = Counters::new();
                    black_box(multiway_merge(
                        black_box(inputs),
                        &StdBaseSorter,
                        &mut counters,
                    ))
                });
            },
        );
    }
    group.finish();
}

fn bench_vs_columnsort(c: &mut Criterion) {
    // E12 wall-clock companion: same keys through both algorithms.
    let mut group = c.benchmark_group("vs_columnsort");
    let keys = random_keys(4096, 3);
    group.bench_function("multiway_merge_sort_4096_N4", |b| {
        b.iter(|| {
            let (out, _) = multiway_merge_sort(black_box(&keys), 4, &StdBaseSorter);
            black_box(out)
        });
    });
    group.bench_function("columnsort_4096_512x8", |b| {
        b.iter(|| {
            let (out, _) = columnsort(black_box(&keys), 512, 8);
            black_box(out)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_full_sort,
    bench_merge_primitive,
    bench_vs_columnsort
);
criterion_main!(benches);
