//! Micro-benchmarks of the order machinery hot paths: the rank/position
//! bijections the simulator evaluates millions of times per sort, and
//! BSP compilation/execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pns_graph::factories;
use pns_order::radix::Shape;
use pns_order::snake::{node_at_snake_pos, snake_pos_of_node};
use pns_order::{gray_rank, gray_unrank};
use pns_simulator::bsp::{compile, BspMachine};
use pns_simulator::ShearSorter;
use std::hint::black_box;

fn bench_bijections(c: &mut Criterion) {
    let mut group = c.benchmark_group("order_bijections");
    for (n, r) in [(4usize, 8usize), (16, 5)] {
        let shape = Shape::new(n, r);
        let len = shape.len();
        group.bench_with_input(
            BenchmarkId::new("snake_pos_of_node", format!("N{n}_r{r}")),
            &shape,
            |b, &shape| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for v in (0..len).step_by(7) {
                        acc ^= snake_pos_of_node(shape, black_box(v));
                    }
                    acc
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("node_at_snake_pos", format!("N{n}_r{r}")),
            &shape,
            |b, &shape| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for p in (0..len).step_by(7) {
                        acc ^= node_at_snake_pos(shape, black_box(p));
                    }
                    acc
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("gray_roundtrip", format!("N{n}_r{r}")),
            &(n, r),
            |b, &(n, r)| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for m in (0..len).step_by(7) {
                        let d = gray_unrank(n, r, black_box(m));
                        acc ^= gray_rank(n, &d);
                    }
                    acc
                });
            },
        );
    }
    group.finish();
}

fn bench_bsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsp");
    let factor = factories::path(8);
    group.bench_function("compile_grid_8^2", |b| {
        b.iter(|| black_box(compile(&factor, 2, &ShearSorter)));
    });
    let program = compile(&factor, 2, &ShearSorter);
    let machine = BspMachine::new(&factor, 2);
    let keys: Vec<u64> = (0..64).rev().collect();
    group.bench_function("run_grid_8^2", |b| {
        b.iter(|| {
            let mut k = keys.clone();
            black_box(machine.run(&mut k, &program))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_bijections, bench_bsp);
criterion_main!(benches);
