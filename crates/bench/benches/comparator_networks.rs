//! Wall-clock benches of the baseline networks (E14): Batcher's odd-even
//! merge sort, bitonic sort, Stone's shuffle-exchange realization, and
//! mesh shearsort.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pns_baselines::mesh::shearsort_mesh;
use pns_baselines::stone::stone_sort;
use pns_baselines::{bitonic_sort_network, odd_even_merge_sort_network};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_keys(len: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.random_range(0..1_000_000)).collect()
}

fn bench_networks(c: &mut Criterion) {
    let mut group = c.benchmark_group("comparator_networks");
    for k in [8usize, 10] {
        let n = 1 << k;
        let keys = random_keys(n, 1);
        let oem = odd_even_merge_sort_network(n);
        let bit = bitonic_sort_network(n);
        group.bench_with_input(BenchmarkId::new("odd_even_merge", n), &keys, |b, keys| {
            b.iter(|| {
                let mut v = keys.clone();
                oem.apply(&mut v);
                black_box(v)
            });
        });
        group.bench_with_input(BenchmarkId::new("bitonic", n), &keys, |b, keys| {
            b.iter(|| {
                let mut v = keys.clone();
                bit.apply(&mut v);
                black_box(v)
            });
        });
        group.bench_with_input(BenchmarkId::new("stone_se", n), &keys, |b, keys| {
            b.iter(|| {
                let mut v = keys.clone();
                black_box(stone_sort(&mut v));
                black_box(v)
            });
        });
    }
    group.finish();
}

fn bench_shearsort(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_shearsort");
    for n in [16usize, 32] {
        let keys = random_keys(n * n, 2);
        group.bench_with_input(BenchmarkId::new("shearsort", n * n), &keys, |b, keys| {
            b.iter(|| {
                let mut v = keys.clone();
                black_box(shearsort_mesh(&mut v, n));
                black_box(v)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_networks, bench_shearsort);
criterion_main!(benches);
