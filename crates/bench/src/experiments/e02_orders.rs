//! E02 — Figs. 3–5 and Definitions 2–3: N-ary Gray codes, snake order,
//! and group sequences, checked against the sequences printed in the
//! paper's Section 2.

use crate::Report;
use pns_order::gray::GrayIter;
use pns_order::group::group_sequence;
use pns_order::radix::Shape;
use pns_order::snake::SnakeIter;

fn label_string(digits: &[usize]) -> String {
    // The paper writes labels most-significant symbol first (x_r … x_1).
    digits.iter().rev().map(ToString::to_string).collect()
}

/// Regenerate `Q_1 … Q_3` for N = 3, the snake order of Fig. 3, and the
/// group sequence `[*]Q¹_2`, asserting the paper's explicit examples.
#[must_use]
pub fn run() -> Report {
    let mut report = Report::new(
        "e02_orders",
        "Figs. 3-5 / Defs. 2-3: ternary Gray codes, snake order, group sequence",
        &["object", "value", "matches paper"],
    );

    // Definition 3's example: Q_1 and Q_2 for N = 3.
    let q1: Vec<String> = GrayIter::new(3, 1).map(|d| label_string(&d)).collect();
    let ok1 = q1.join(",") == "0,1,2";
    report.check(ok1);
    report.row(&["Q_1", &q1.join(" "), &ok1.to_string()]);

    let q2: Vec<String> = GrayIter::new(3, 2).map(|d| label_string(&d)).collect();
    let ok2 = q2.join(",") == "00,01,02,12,11,10,20,21,22";
    report.check(ok2);
    report.row(&["Q_2", &q2.join(" "), &ok2.to_string()]);

    // Fig. 3's snake order is Q_3; check its first nine labels.
    let shape = Shape::new(3, 3);
    let snake: Vec<String> = SnakeIter::new(shape)
        .map(|v| label_string(&shape.unrank(v)))
        .collect();
    let ok3 = snake[..9].join(",") == "000,001,002,012,011,010,020,021,022";
    report.check(ok3);
    report.row(&["Q_3 (first 9)", &snake[..9].join(" "), &ok3.to_string()]);

    // Section 2's group-sequence example:
    // [*]Q¹_2 = {00*, 01*, 02*, 12*, 11*, 10*, 20*, 21*, 22*}.
    let groups: Vec<String> = group_sequence(3, 2)
        .iter()
        .map(|(lab, _)| format!("{}*", label_string(lab)))
        .collect();
    let ok4 = groups.join(",") == "00*,01*,02*,12*,11*,10*,20*,21*,22*";
    report.check(ok4);
    report.row(&["[*]Q^1_2", &groups.join(" "), &ok4.to_string()]);

    report.note(
        "Even-weight group labels expand to {0,1,2} (forward traversal) and \
         odd-weight labels to {2,1,0}, exactly as the expanded sequence in \
         Section 2 shows.",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_rows_match() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
        assert_eq!(r.rows.len(), 4);
    }
}
