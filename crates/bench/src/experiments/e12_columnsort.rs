//! E12 — §1/§3: comparison with Leighton's Columnsort, the multiway
//! competitor. The paper's argument: Columnsort is "a series of sorting
//! steps" needing ever-larger sorters (one level sorts `r·s` keys with
//! four rounds of `r`-key column sorts, `r ≥ 2(s-1)²`, so `r = Ω(M^{2/3})`
//! for `M` keys), while the merge-based algorithm only ever sorts `N²`
//! keys at a time; recursing Columnsort down to `N²`-key sorters
//! multiplies its rounds by 4 per level.

use crate::Report;
use pns_baselines::columnsort;
use pns_core::{multiway_merge_sort, StdBaseSorter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of 4-round Columnsort levels needed to reduce the column length
/// to at most `block` keys, recursing with `r' ≈ M^{2/3}`.
#[must_use]
pub fn columnsort_recursion_depth(keys: u64, block: u64) -> u32 {
    let mut m = keys;
    let mut depth = 0u32;
    while m > block {
        // One level sorts columns of length r where r·s = m, s ≈ m^{1/3}.
        let r = (m as f64).powf(2.0 / 3.0).ceil() as u64;
        m = r.max(block);
        depth += 1;
        if m == r && r >= keys {
            break; // degenerate; cannot shrink further
        }
    }
    depth
}

/// Regenerate the Columnsort-vs-merge comparison.
#[must_use]
pub fn run() -> Report {
    let mut report = Report::new(
        "e12_columnsort",
        "§1/§3: ours (merge-based, fixed N²-key sorter) vs Columnsort \
         (sort-based, needs Ω(M^{2/3})-key column sorter per level)",
        &[
            "keys M",
            "ours N",
            "ours rounds (r-1)²",
            "ours block N²",
            "columnsort rounds (1 level)",
            "columnsort block r=M^{2/3}",
            "columnsort levels to reach block N²",
            "both sort correctly",
        ],
    );
    let mut rng = StdRng::seed_from_u64(2024);
    for (n, r) in [(3usize, 4usize), (4, 4), (4, 5)] {
        let m_keys = (n as u64).pow(r as u32);
        let keys: Vec<u64> = (0..m_keys).map(|_| rng.random_range(0..10_000)).collect();

        // Ours.
        let (ours_sorted, counters) = multiway_merge_sort(&keys, n, &StdBaseSorter);

        // One level of Columnsort with a valid (rows, cols) split of the
        // same keys: cols = smallest s ≥ 2 with s | rows and
        // rows ≥ 2(s-1)²; pick s as close to M^{1/3} as validity allows.
        let (rows, cols) = valid_columnsort_shape(m_keys as usize);
        let (cs_sorted, cs_cost) = columnsort(&keys, rows, cols);

        let mut expect = keys.clone();
        expect.sort_unstable();
        let both_ok = ours_sorted == expect && cs_sorted == expect;
        report.check(both_ok);

        let rr = (r - 1) as u64;
        report.row(&[
            m_keys.to_string(),
            n.to_string(),
            (rr * rr).to_string(),
            (n * n).to_string(),
            format!("{}+{} perms", cs_cost.sort_rounds, cs_cost.permute_rounds),
            rows.to_string(),
            columnsort_recursion_depth(m_keys, (n * n) as u64).to_string(),
            both_ok.to_string(),
        ]);
        let _ = counters;
    }
    report.note(
        "Who wins: with a fixed small sorter (the product network's PG_2), \
         Columnsort must recurse — each level multiplies its sort rounds by \
         4 and still reshuffles all keys in 4 permutation phases per level, \
         while the merge-based algorithm reaches (r-1)² rounds with *zero* \
         extra routing beyond its 2(r-1)(r-2)/… transposition rounds: the \
         'fundamental differences' the paper's introduction claims.",
    );
    report
}

/// A valid Columnsort shape for `m` keys: maximize `s` (minimize column
/// length) subject to `s | r` and `r ≥ 2(s-1)²`.
#[must_use]
pub fn valid_columnsort_shape(m: usize) -> (usize, usize) {
    let mut best = (m, 1);
    for s in 2..=m {
        if !m.is_multiple_of(s) {
            continue;
        }
        let r = m / s;
        if r.is_multiple_of(s) && r >= 2 * (s - 1) * (s - 1) {
            best = (r, s);
        }
        if (s * s) > m {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    #[test]
    fn comparison_runs_and_both_sort() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }

    #[test]
    fn shapes_are_valid() {
        for m in [81usize, 256, 1024, 6561] {
            let (r, s) = super::valid_columnsort_shape(m);
            assert_eq!(r * s, m);
            assert_eq!(r % s, 0);
            assert!(r >= 2 * (s - 1) * (s - 1), "m={m}: r={r} s={s}");
        }
    }

    #[test]
    fn recursion_depth_grows_with_keys() {
        let d1 = super::columnsort_recursion_depth(81, 9);
        let d2 = super::columnsort_recursion_depth(6561, 9);
        assert!(d2 >= d1);
        assert!(d1 >= 1);
    }
}
