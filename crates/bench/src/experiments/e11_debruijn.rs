//! E11 — §5.5 Products of de Bruijn / shuffle-exchange graphs: `PG_2`
//! emulates the `N²`-node de Bruijn (equivalently shuffle-exchange)
//! network with constant dilation, so `S2 = O(log² N)` via Batcher's
//! algorithm, giving `O(r² log² N)` overall — asymptotically the same as
//! Batcher on the `N^r`-node de Bruijn graph.
//!
//! We (a) measure Stone's shuffle-exchange bitonic sort on `N² = 2^{2b}`
//! keys — the concrete `O(log² N)` sorter behind the `S2` constant —
//! and (b) run the charged product sort, checking the `O(r² log² N)`
//! scaling (the ratio `steps / ((r-1)² log² N)` stays bounded).

use crate::Report;
use pns_baselines::debruijn::{de_bruijn_sort, DeBruijnSortCost};
use pns_baselines::stone::{stone_sort, StoneCost};
use pns_order::radix::Shape;
use pns_simulator::{network_sort, ChargedEngine, CostModel};

/// Regenerate the de Bruijn table.
#[must_use]
pub fn run() -> Report {
    let mut report = Report::new(
        "e11_debruijn",
        "§5.5 de Bruijn / shuffle-exchange products: S2 = O(log²N) via \
         Stone's SE bitonic sort; total O(r² log² N)",
        &[
            "b (N=2^b)",
            "r",
            "keys",
            "stone S2 on N² keys (measured)",
            "charged steps",
            "steps/((r-1)²·4b²)",
            "match",
        ],
    );
    for b in [2usize, 3, 4] {
        // Stone's sort on N² = 2^{2b} keys: k = 2b, shuffles k², compares
        // k(k+1)/2; with the dilation-2 product emulation this doubles —
        // the CostModel's charged S2.
        let n2 = 1usize << (2 * b);
        let mut keys: Vec<u32> = (0..n2 as u32).rev().collect();
        let cost = stone_sort(&mut keys);
        let stone_ok =
            cost == StoneCost::predicted(2 * b) && keys == (0..n2 as u32).collect::<Vec<_>>();
        report.check(stone_ok);
        // The same schedule executed on the de Bruijn graph (every hop a
        // real dB edge; exchanges route through the shared parent).
        let mut db_keys: Vec<u32> = (0..n2 as u32).rev().collect();
        let db_cost = de_bruijn_sort(&mut db_keys);
        let db_ok = db_cost == DeBruijnSortCost::predicted(2 * b)
            && db_keys == (0..n2 as u32).collect::<Vec<_>>();
        report.check(db_ok);

        let n = 1usize << b;
        for r in [2usize, 3] {
            if (n as u64).pow(r as u32) > 1 << 16 {
                continue;
            }
            let model = CostModel::paper_de_bruijn(b);
            let shape = Shape::new(n, r);
            let mut pkeys: Vec<u64> = (0..shape.len()).rev().collect();
            let mut engine = ChargedEngine::new(model.clone());
            let out = network_sort(shape, &mut pkeys, &mut engine);
            assert!(pns_simulator::netsort::is_snake_sorted(shape, &pkeys));
            let rr = (r - 1) as u64;
            let norm = out.steps as f64 / (rr * rr * 4 * (b as u64) * (b as u64)) as f64;
            // The normalized constant must stay bounded (O(r² log² N)).
            let ok = stone_ok && norm <= 4.0 && out.steps == model.predicted_sort_steps(r);
            report.check(ok);
            report.row(&[
                b.to_string(),
                r.to_string(),
                shape.len().to_string(),
                format!(
                    "{} (= {}²+{}·{}⁄2·…)",
                    cost.total(),
                    2 * b,
                    2 * b,
                    2 * b + 1
                ),
                out.steps.to_string(),
                format!("{norm:.2}"),
                ok.to_string(),
            ]);
        }
    }
    report.note(
        "Stone's measured costs match k² shuffles + k(k+1)/2 compares for \
         k = 2b exactly, and the de Bruijn execution (every hop verified \
         against real de Bruijn edges, exchanges routed through the shared \
         parent) matches k² + k(k+1) — both O(log² N²). The charged \
         product model doubles the Stone totals for the dilation-2 \
         emulation of the N²-node de Bruijn graph inside PG_2 (the [9] \
         embedding). The normalized column shows the O(r² log² N) \
         constant is flat across N and r.",
    );
    report.note(
        "For fixed r this is O(log² N) — the same asymptotic as Batcher on \
         the N^r-node shuffle-exchange graph, which is the §5.5 claim.",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn debruijn_scaling_holds() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }
}
