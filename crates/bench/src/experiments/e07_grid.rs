//! E07 — §5.1 Grid: with Schnorr–Shamir's `S2 = 3N` and `R = N - 1`,
//! sorting `N^r` keys on the r-dimensional grid takes at most
//! `4(r-1)²N + o(r²N)` steps; for fixed `r` that is `O(N)`, which is
//! asymptotically optimal (diameter `r(N-1)`).
//!
//! We sweep `N` at fixed `r` (charged model) to show the linear-in-`N`
//! series the section describes, and also run the executed engine
//! (shearsort) on small grids to demonstrate realizability with exact
//! step counts `(r-1)²·S2_shear + (r-1)(r-2)·1`.

use crate::report::ascii_chart;
use crate::Report;
use pns_graph::factories;
use pns_order::radix::Shape;
use pns_simulator::{network_sort, ChargedEngine, CostModel, Machine, ShearSorter};

/// Charged steps of sorting `N^r` keys on the grid.
#[must_use]
pub fn grid_charged_steps(n: usize, r: usize) -> u64 {
    let shape = Shape::new(n, r);
    let mut keys: Vec<u64> = (0..shape.len()).rev().collect();
    let mut engine = ChargedEngine::new(CostModel::paper_grid(n));
    let out = network_sort(shape, &mut keys, &mut engine);
    assert!(pns_simulator::netsort::is_snake_sorted(shape, &keys));
    out.steps
}

/// Regenerate the grid series.
#[must_use]
pub fn run() -> Report {
    let mut report = Report::new(
        "e07_grid",
        "§5.1 Grid: steps vs 4(r-1)²N bound; O(N) for fixed r; \
         diameter lower bound r(N-1)",
        &[
            "r",
            "N",
            "keys",
            "steps",
            "4(r-1)²N",
            "steps/N",
            "diam r(N-1)",
            "within",
        ],
    );
    for r in [2usize, 3, 4] {
        for n in [4usize, 8, 16, 32] {
            if (n as u64).pow(r as u32) > 1 << 21 {
                continue;
            }
            let steps = grid_charged_steps(n, r);
            let rr = (r - 1) as u64;
            // 4(r-1)²N plus the o(r²N) slack: the exact closed form is
            // 3(r-1)²N + (r-1)(r-2)(N-1) ≤ 4(r-1)²N.
            let bound = 4 * rr * rr * n as u64;
            let diam = (r * (n - 1)) as u64;
            let ok = steps <= bound && steps >= diam;
            report.check(ok);
            report.row(&[
                r.to_string(),
                n.to_string(),
                (n as u64).pow(r as u32).to_string(),
                steps.to_string(),
                bound.to_string(),
                format!("{:.1}", steps as f64 / n as f64),
                diam.to_string(),
                ok.to_string(),
            ]);
        }
    }
    report.note(
        "steps/N is constant for fixed r — the O(N) optimality claim of \
         §5.1. The diameter r(N-1) is the trivial lower bound any sorting \
         algorithm must exceed.",
    );
    // Figure-style companion: the linear-in-N series at fixed r.
    let mut series = Vec::new();
    for r in [2usize, 3, 4] {
        let pts: Vec<(f64, f64)> = [4usize, 8, 16, 32]
            .iter()
            .map(|&n| (n as f64, grid_charged_steps(n, r) as f64))
            .collect();
        series.push((r, pts));
    }
    let named: Vec<(String, Vec<(f64, f64)>)> = series
        .into_iter()
        .map(|(r, pts)| (format!("r = {r}"), pts))
        .collect();
    let borrowed: Vec<(&str, Vec<(f64, f64)>)> =
        named.iter().map(|(n, p)| (n.as_str(), p.clone())).collect();
    report.note(&format!(
        "```text\n{}```",
        ascii_chart(
            "charged steps vs N (grid, Theorem 1 with S2 = 3N)",
            &borrowed
        )
    ));

    // Executed realization on small grids.
    let mut exec_note =
        String::from("Executed engine (shearsort as S2, every transposition an edge): ");
    for (n, r) in [(3usize, 3usize), (4, 3), (8, 2)] {
        let factor = factories::path(n);
        let mut m = Machine::executed(&factor, r, &ShearSorter);
        let s2 = m.s2_steps();
        let len = (n as u64).pow(r as u32);
        let keys: Vec<u64> = (0..len).rev().collect();
        let rep = m.sort(keys).expect("key count matches");
        assert!(rep.is_snake_sorted());
        let rr = (r - 1) as u64;
        let predicted = rr * rr * s2 + (rr * (rr - 1));
        let ok = rep.steps() == predicted;
        report.check(ok);
        exec_note.push_str(&format!(
            "N={n},r={r}: measured {} = (r-1)²·{s2} + (r-1)(r-2)·1 ({}); ",
            rep.steps(),
            ok
        ));
    }
    report.note(&exec_note);
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn grid_series_within_bounds() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }

    #[test]
    fn fixed_r_series_is_linear_in_n() {
        // Doubling N roughly doubles the steps at fixed r.
        let s8 = super::grid_charged_steps(8, 3);
        let s16 = super::grid_charged_steps(16, 3);
        let ratio = s16 as f64 / s8 as f64;
        assert!((1.8..=2.2).contains(&ratio), "ratio {ratio}");
    }
}
