//! E03 — Lemma 1: after Steps 1–3 of the merge, the dirty window of a 0/1
//! input is at most `N²`. Measured exhaustively over the whole 0/1 input
//! space for each parameter pair, plus the observed worst case (the bound
//! is tight up to lower-order terms).

use crate::Report;
use pns_core::dirty::dirty_window;
use pns_core::merge::{steps_1_to_3, StdBaseSorter};
use pns_core::zero_one::{zero_count_vectors, zero_one_inputs};
use pns_core::Counters;

/// Measure the worst dirty window over all 0/1 merge inputs.
#[must_use]
pub fn worst_dirty_window(n: usize, m: usize) -> (usize, u64) {
    let mut worst = 0usize;
    let mut inputs_checked = 0u64;
    for counts in zero_count_vectors(n, m) {
        let inputs = zero_one_inputs(&counts, m);
        let mut c = Counters::new();
        let d = steps_1_to_3(&inputs, &StdBaseSorter, &mut c);
        worst = worst.max(dirty_window(&d));
        inputs_checked += 1;
    }
    (worst, inputs_checked)
}

/// Regenerate the Lemma 1 bound table.
#[must_use]
pub fn run() -> Report {
    let mut report = Report::new(
        "e03_dirty_window",
        "Lemma 1: dirty window after Step 3 is ≤ N² (exhaustive over all 0/1 inputs)",
        &[
            "N",
            "m",
            "inputs",
            "worst window",
            "bound N²",
            "within bound",
        ],
    );
    for (n, m) in [
        (2usize, 4usize),
        (2, 8),
        (2, 16),
        (2, 32),
        (3, 9),
        (3, 27),
        (4, 16),
    ] {
        let (worst, inputs) = worst_dirty_window(n, m);
        let bound = n * n;
        let ok = worst <= bound;
        report.check(ok);
        report.row(&[
            n.to_string(),
            m.to_string(),
            inputs.to_string(),
            worst.to_string(),
            bound.to_string(),
            ok.to_string(),
        ]);
    }
    report.note(
        "Each input is one zero-count vector (a sorted 0/1 sequence per \
         merge input); by the zero-one principle this measures the bound \
         over *all* inputs of the merge's steps 1-3.",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn bound_holds_everywhere() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }

    #[test]
    fn bound_is_nearly_tight_for_n3() {
        // The worst case approaches N² (it cannot be a loose artifact).
        let (worst, _) = super::worst_dirty_window(3, 9);
        assert!(worst > 3, "worst window {worst} unexpectedly small");
    }
}
