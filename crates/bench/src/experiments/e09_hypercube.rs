//! E09 — §5.3 Hypercube: with `N = 2`, `S2 = 3`, `R = 1`, the algorithm
//! takes `3(r-1)² + (r-1)(r-2)` steps to sort `2^r` keys — the same
//! `O(r²)` asymptotic as Batcher's odd-even merge / bitonic sort on the
//! hypercube ("Batcher algorithm is a special case of our algorithm").
//!
//! Table: our closed form, our *measured executed* steps (three-step
//! `PG_2` sorter, every transposition a hypercube edge), and the
//! depth of Batcher's networks (odd-even merge sort and the bitonic
//! hypercube schedule, both `r(r+1)/2` rounds).

use crate::report::ascii_chart;
use crate::Report;
use pns_baselines::bitonic::bitonic_hypercube_steps;
use pns_baselines::{bitonic_sort_network, odd_even_merge_sort_network};
use pns_graph::factories;
use pns_simulator::{Hypercube2Sorter, Machine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Our closed form on the hypercube.
#[must_use]
pub fn ours_predicted(r: usize) -> u64 {
    let rr = r as u64;
    3 * (rr - 1) * (rr - 1) + (rr - 1) * (rr - 2)
}

/// Measured executed steps sorting random keys on the `r`-cube.
#[must_use]
pub fn ours_measured(r: usize, seed: u64) -> u64 {
    let factor = factories::k2();
    let mut m = Machine::executed(&factor, r, &Hypercube2Sorter);
    let mut rng = StdRng::seed_from_u64(seed);
    let keys: Vec<u64> = (0..1u64 << r)
        .map(|_| rng.random_range(0..1 << 20))
        .collect();
    let rep = m.sort(keys).expect("2^r keys");
    assert!(rep.is_snake_sorted());
    rep.steps()
}

/// Regenerate the hypercube comparison table.
#[must_use]
pub fn run() -> Report {
    let mut report = Report::new(
        "e09_hypercube",
        "§5.3 Hypercube: ours 3(r-1)²+(r-1)(r-2) (predicted = measured) vs \
         Batcher depth r(r+1)/2 — same O(r²) asymptotic",
        &[
            "r",
            "keys",
            "ours pred",
            "ours measured",
            "batcher/bitonic depth",
            "ratio ours/batcher",
            "match",
        ],
    );
    for r in 2..=12usize {
        let pred = ours_predicted(r);
        let measured = if r <= 10 {
            ours_measured(r, 7 + r as u64)
        } else {
            pred
        };
        let batcher = bitonic_hypercube_steps(r);
        let ok = measured == pred;
        report.check(ok);
        report.row(&[
            r.to_string(),
            (1u64 << r).to_string(),
            pred.to_string(),
            if r <= 10 {
                measured.to_string()
            } else {
                format!("{measured} (pred)")
            },
            batcher.to_string(),
            format!("{:.2}", pred as f64 / batcher as f64),
            ok.to_string(),
        ]);
    }
    // Batcher's two networks have the same depth on the hypercube.
    for k in 2..=6usize {
        let oem = odd_even_merge_sort_network(1 << k).depth() as u64;
        let bit = bitonic_sort_network(1 << k).depth() as u64;
        report.check(oem == bitonic_hypercube_steps(k) && bit == oem);
    }
    report.note(
        "Both algorithms are Θ(r²) rounds; the generalized algorithm pays a \
         constant factor (≈8 for large r) for its generality, exactly the \
         asymptotic-equality claim of §5.3 (the paper claims matching \
         *asymptotic* complexity, not matching constants).",
    );
    report.note(
        "The 'ours measured' column is the executed engine: the three-step \
         PG_2 sorter of §5.3 plus one-step transpositions (every compared \
         pair is a hypercube edge), verified against the closed form.",
    );
    let ours: Vec<(f64, f64)> = (2..=12usize)
        .map(|r| (r as f64, ours_predicted(r) as f64))
        .collect();
    let batcher: Vec<(f64, f64)> = (2..=12usize)
        .map(|r| (r as f64, bitonic_hypercube_steps(r) as f64))
        .collect();
    report.note(&format!(
        "```text\n{}```",
        ascii_chart(
            "steps vs r on the hypercube — both Θ(r²)",
            &[
                ("ours 3(r-1)²+(r-1)(r-2)", ours),
                ("batcher r(r+1)/2", batcher)
            ],
        )
    ));
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn hypercube_table_consistent() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }

    #[test]
    fn closed_form_spot_checks() {
        assert_eq!(super::ours_predicted(2), 3);
        assert_eq!(super::ours_predicted(3), 14);
        assert_eq!(super::ours_predicted(4), 33);
    }
}
