//! E18 (extension) — fault injection, detection, and checkpointed
//! recovery on the BSP executor.
//!
//! The paper's model assumes a fault-free synchronous network. This
//! experiment measures what its structure buys when that assumption is
//! dropped: the stage invariant behind Lemma 3 ("after stage `k`, every
//! `k`-dimensional subgraph is snake-sorted") doubles as a cheap runtime
//! *certificate*, so the executor can detect transient faults at stage
//! boundaries and retry just the corrupted stage from a checkpoint.
//!
//! For a matrix of configurations × fault kinds × rates, a batch of
//! lanes runs under independently forked fault plans with
//! `RetryPolicy::default()` (three retries per segment, full
//! certificates). The table reports faults injected, detections,
//! retries, quarantined lanes, and the step inflation
//! `(useful + wasted) / useful` — and checks that **every** lane ends
//! snake-sorted, at every rate up to 10 faults per 1000 ops. A final
//! set of rows repeats the sweep with `RetryPolicy::detect_only()`
//! (no retries) to exercise the quarantine fallback.
//!
//! With `PNS_OBS=jsonl[:path]`, the fault events
//! (`fault_injected`/`fault_detected`/`retry_round`/`lane_quarantined`)
//! stream to the artifact like every other experiment.

use crate::Report;
use pns_graph::factories;
use pns_obs::EventLogger;
use pns_simulator::netsort::is_snake_sorted;
use pns_simulator::{
    compile, BspMachine, FaultKind, FaultPlan, FaultReport, Hypercube2Sorter, OetSnakeSorter,
    Pg2Sorter, RetryPolicy, ShearSorter,
};

const LANES: u64 = 8;

fn lcg_keys(len: u64, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 30
        })
        .collect()
}

/// Per-row aggregate across a batch of lanes.
struct RowOutcome {
    injected: u64,
    detected: u64,
    retries: u64,
    quarantined: u64,
    inflation: f64,
    all_sorted: bool,
}

fn run_case(
    machine: &BspMachine,
    program: &pns_simulator::CompiledProgram,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    seed: u64,
) -> RowOutcome {
    let len = machine.shape().len();
    let mut batch: Vec<Vec<u64>> = (0..LANES)
        .map(|i| lcg_keys(len, seed ^ (i * 7919)))
        .collect();
    let results = machine.run_batch_with_faults(&mut batch, program, plan, policy);
    let mut total = pns_core::RetryCounters::new();
    let mut out = RowOutcome {
        injected: 0,
        detected: 0,
        retries: 0,
        quarantined: 0,
        inflation: 1.0,
        all_sorted: true,
    };
    for (lane, res) in results.iter().enumerate() {
        match res {
            Ok(report) => {
                let FaultReport { counters, .. } = report;
                out.injected += report.injected.len() as u64;
                out.detected += report.detections.len() as u64;
                out.retries += report.retries.len() as u64;
                out.quarantined += u64::from(report.quarantined);
                total = total.then(*counters);
                out.all_sorted &= is_snake_sorted(machine.shape(), &batch[lane]);
            }
            Err(_) => out.all_sorted = false,
        }
    }
    out.inflation = total.inflation();
    out
}

/// Regenerate the fault-tolerance table.
///
/// # Panics
///
/// Panics if a configuration fails to compile (an implementation bug).
#[must_use]
pub fn run() -> Report {
    let mut report = Report::new(
        "e18_fault_tolerance",
        "Extension: transient faults vs stage certificates — checkpointed \
         retry sorts every lane at rates up to 10/1000 ops; without \
         retries, quarantine still degrades gracefully to sorted output",
        &[
            "case",
            "policy",
            "kinds",
            "rate/M",
            "ops",
            "injected",
            "detected",
            "retries",
            "quarantined",
            "inflation",
            "sorted",
        ],
    );

    let logger = EventLogger::from_env("e18_fault_tolerance");
    let configs: Vec<(&str, pns_graph::Graph, usize, &dyn Pg2Sorter)> = vec![
        ("path(3) r=2 oet", factories::path(3), 2, &OetSnakeSorter),
        ("path(3) r=3 shear", factories::path(3), 3, &ShearSorter),
        ("star(4) r=2 oet", factories::star(4), 2, &OetSnakeSorter),
        ("k2 r=6 batcher", factories::k2(), 6, &Hypercube2Sorter),
    ];
    let kind_sets: [(&str, &[FaultKind]); 2] = [
        ("all", &FaultKind::ALL),
        ("flip", &[FaultKind::FlipCompare]),
    ];

    for (name, factor, r, sorter) in &configs {
        let program = compile(factor, *r, *sorter);
        let mut machine = BspMachine::new(factor, *r);
        machine.attach_logger(logger.clone());
        let ops = program.op_count();
        // Default policy: every rate up to 1% must end sorted.
        for rate in [100u64, 1_000, 10_000] {
            for (kname, kinds) in kind_sets {
                let plan = FaultPlan::random_with_kinds(rate ^ 0xE18, rate, kinds);
                let out = run_case(&machine, &program, &plan, &RetryPolicy::default(), 42);
                report.check(out.all_sorted);
                report.row(&[
                    (*name).to_owned(),
                    "retry(3)".to_owned(),
                    kname.to_owned(),
                    rate.to_string(),
                    ops.to_string(),
                    out.injected.to_string(),
                    out.detected.to_string(),
                    out.retries.to_string(),
                    out.quarantined.to_string(),
                    format!("{:.3}", out.inflation),
                    if out.all_sorted { "yes" } else { "NO" }.to_owned(),
                ]);
            }
        }
        // No retries: detections go straight to quarantine, output must
        // still come back sorted.
        let plan = FaultPlan::random(0xDE7EC7, 10_000);
        let out = run_case(&machine, &program, &plan, &RetryPolicy::detect_only(), 43);
        report.check(out.all_sorted);
        report.row(&[
            (*name).to_owned(),
            "detect-only".to_owned(),
            "all".to_owned(),
            "10000".to_owned(),
            ops.to_string(),
            out.injected.to_string(),
            out.detected.to_string(),
            out.retries.to_string(),
            out.quarantined.to_string(),
            format!("{:.3}", out.inflation),
            if out.all_sorted { "yes" } else { "NO" }.to_owned(),
        ]);
    }

    report.note(
        "Detection reuses the algorithm's own invariant: the per-stage \
         certificate of Lemma 3, checked only at stage boundaries where \
         transit is empty (so a checkpoint is just the key vector). A \
         transient fault therefore costs at most one re-run of the stage \
         it corrupted — visible as inflation close to 1 at low rates.",
    );
    report.note(
        "With retries disabled every detection exhausts immediately and \
         the batch quarantines the lane: the original input re-runs \
         serially and fault-free. Inflation then jumps (the whole \
         faulty run is wasted), but no lane is ever returned unsorted \
         and nothing panics — degradation, not failure.",
    );
    logger.finish();
    report
}
