//! E15 (future work, §6) — "we could try to generalize the hypercube
//! randomized algorithms for product networks": randomized sample sort
//! (after the paper's \[5\]) vs the deterministic blocked multiway-merge
//! sort, on grids with `b` keys per node.
//!
//! The deterministic cost grows as `b·(r-1)²·S2`; sample sort pays
//! per-dimension routing proportional to the actual edge loads plus local
//! sorting — so as `r` (and `b`) grow, the randomized algorithm pulls
//! ahead, which is exactly the behaviour \[5\] reported on the CM-2
//! against Batcher-style sorting.

use crate::Report;
use pns_graph::factories;
use pns_order::radix::Shape;
use pns_simulator::block::block_sort;
use pns_simulator::{sample_sort, CostModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Regenerate the randomized-vs-deterministic table.
#[must_use]
pub fn run() -> Report {
    let mut report = Report::new(
        "e15_randomized",
        "Future work (§6): randomized sample sort vs deterministic blocked \
         multiway-merge on grids",
        &[
            "N",
            "r",
            "b",
            "keys",
            "det steps",
            "sample steps",
            "det/sample",
            "max load / b",
            "both sorted",
        ],
    );
    let n = 8usize;
    let factor = factories::path(n);
    let model = CostModel::paper_grid(n);
    let mut rng = StdRng::seed_from_u64(2026);
    let mut r3_wins = true;
    for r in [2usize, 3] {
        for b in [4usize, 16, 64, 256] {
            let shape = Shape::new(n, r);
            let p = shape.len() as usize;
            if p * b > 1 << 20 {
                continue;
            }
            let keys: Vec<u64> = (0..p * b).map(|_| rng.random_range(0..1 << 30)).collect();
            let mut expect = keys.clone();
            expect.sort_unstable();

            let (det_sorted, det) = block_sort(shape, b, keys.clone(), model.clone());
            let oversample = (b / 4).clamp(1, b);
            let (rnd_sorted, rnd) =
                sample_sort(&factor, r, b, keys, oversample, 42 + b as u64, &model);
            let both_ok = det_sorted == expect && rnd_sorted == expect;
            report.check(both_ok);
            if r == 3 && b >= 16 {
                r3_wins &= rnd.total() < det.steps;
            }
            report.row(&[
                n.to_string(),
                r.to_string(),
                b.to_string(),
                (p * b).to_string(),
                det.steps.to_string(),
                rnd.total().to_string(),
                format!("{:.2}", det.steps as f64 / rnd.total() as f64),
                format!("{:.2}", rnd.max_load as f64 / b as f64),
                both_ok.to_string(),
            ]);
        }
    }
    report.check(r3_wins);
    report.note(&format!(
        "At r = 3 with b ≥ 16, sample sort beats the deterministic \
         algorithm ({}): its routing cost is measured from actual edge \
         loads and grows ~linearly in r, while the deterministic bound \
         carries the (r-1)² factor. At r = 2 the deterministic algorithm \
         still wins — the randomized overhead (splitter sort, imbalance, \
         rebalancing) is not yet amortized. This mirrors [5]'s CM-2 \
         findings and answers the paper's closing question in the \
         affirmative for the blocked regime.",
        r3_wins
    ));
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn randomized_comparison_holds() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }
}
