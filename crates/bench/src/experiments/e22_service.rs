//! E22 (extension) — the sorting service under load. Three scenarios
//! drive the `pns-service` stack (admission → coalescer → degradation
//! ladder) with concurrent submitter threads:
//!
//! * **steady_state** — sustained load below every admission rung:
//!   every request completes, p50/p99 queue-to-response latency lands
//!   in `BENCH_e22_service.json`, and a second run with the `pns-obs`
//!   registry export sampling in the background bounds the enabled-obs
//!   tax at the existing <5% budget.
//! * **burst_overload** — submitters racing far past the queue
//!   watermark: the service sheds with typed errors, nothing panics,
//!   and *every* request is accounted — sorted, timed out, or
//!   rejected; nothing hangs, nothing double-resolves.
//! * **fault_injected** — a random fault plan exercises the full
//!   ladder (in-run retries → backed-off service retries → quarantine):
//!   every response is still correctly snake-sorted, degradations are
//!   counted, terminal failures are zero.
//!
//! The same driver powers the `loadtest` binary at nightly scale
//! (millions of requests); [`collect`] runs bounded counts so the
//! experiment stays in benchmark range.

use crate::Report;
use pns_fault::FaultPlan;
use pns_graph::factories;
use pns_obs::{Histogram, Registry};
use pns_service::{ServiceConfig, ServiceError, SortService};
use pns_simulator::netsort::is_snake_sorted;
use pns_simulator::BspMachine;
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Factor graph of the served shape: `path(3)^2`, 9 keys per request —
/// small enough that the service layer, not the sort, is what's under
/// test.
const FACTOR_N: usize = 3;
const R: usize = 2;
const KEYS: u64 = 9;

/// One load scenario: counts, concurrency, service tuning, faults.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Row identity in the artifact.
    pub name: &'static str,
    /// Total requests across all submitter threads.
    pub requests: u64,
    /// Submitter threads (each is one tenant).
    pub threads: u64,
    /// Outstanding tickets a submitter keeps in flight.
    pub window: usize,
    /// Service tuning for the scenario.
    pub config: ServiceConfig,
    /// Fault plan handed to the service executor.
    pub fault_plan: FaultPlan,
    /// Run a background thread exporting the metrics registry while
    /// the load runs (the enabled-obs configuration).
    pub export_obs: bool,
}

/// What a [`drive`] run observed, fully accounted.
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    /// Requests the submitters attempted.
    pub submitted: u64,
    /// Resolved with sorted keys (includes `degraded`).
    pub completed: u64,
    /// Completed via the quarantine rung.
    pub degraded: u64,
    /// Resolved with a typed [`ServiceError::Timeout`].
    pub timeouts: u64,
    /// Resolved at admission with a typed rejection.
    pub rejected: u64,
    /// Terminal fault/internal errors (must stay zero).
    pub failed: u64,
    /// Responses that failed the snake-sort check (must stay zero).
    pub unsorted: u64,
    /// Wall-clock of the whole run.
    pub wall_ns: u64,
    /// Queue-to-response latency of completed requests, merged across
    /// tenants from the service's own histograms.
    pub latency: Histogram,
    /// Registry exports performed by the obs sampler.
    pub exports: u64,
}

impl Outcome {
    /// Every submitted request resolved to exactly one typed outcome.
    #[must_use]
    pub fn fully_accounted(&self) -> bool {
        self.completed + self.timeouts + self.rejected + self.failed == self.submitted
    }

    /// Requests per second over the wall clock.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn throughput_per_sec(&self) -> f64 {
        self.submitted as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }
}

fn keys_for(seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..KEYS)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        })
        .collect()
}

/// Run one scenario to completion and account for every request.
///
/// # Panics
///
/// Panics only on harness errors (thread join, shape registration) —
/// service-side failures are tallied, never thrown.
#[must_use]
pub fn drive(scenario: &Scenario) -> Outcome {
    let factor = factories::path(FACTOR_N);
    let service = Arc::new(
        SortService::builder(scenario.config)
            .fault_plan(scenario.fault_plan.clone())
            .register_shape(&factor, R)
            .expect("path(3) is connected")
            .start(),
    );

    let done = Arc::new(AtomicBool::new(false));
    let sampler = scenario.export_obs.then(|| {
        let service = Arc::clone(&service);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut registry = Registry::new();
            let mut exports = 0u64;
            while !done.load(Ordering::Relaxed) {
                service.export_metrics(&mut registry);
                // Materializing the text form is the realistic cost: a
                // scrape renders the whole registry.
                std::hint::black_box(registry.prometheus_text().len());
                exports += 1;
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            exports
        })
    });

    let per_thread = scenario.requests / scenario.threads.max(1);
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..scenario.threads.max(1) {
        let service = Arc::clone(&service);
        let window = scenario.window.max(1);
        handles.push(std::thread::spawn(move || {
            let machine = BspMachine::new(&factories::path(FACTOR_N), R);
            let mut tally = Outcome::default();
            let mut inflight = VecDeque::new();
            let resolve =
                |tally: &mut Outcome, result: Result<pns_service::SortResponse, ServiceError>| {
                    match result {
                        Ok(response) => {
                            tally.completed += 1;
                            tally.degraded += u64::from(response.degraded);
                            if !is_snake_sorted(machine.shape(), &response.keys) {
                                tally.unsorted += 1;
                            }
                        }
                        Err(ServiceError::Timeout { .. }) => tally.timeouts += 1,
                        Err(ServiceError::Rejected(_)) => {
                            unreachable!("rejections resolve at submit")
                        }
                        Err(ServiceError::Fault(_) | ServiceError::Internal(_)) => {
                            tally.failed += 1
                        }
                    }
                };
            for i in 0..per_thread {
                tally.submitted += 1;
                match service.submit(t as u32, 0, keys_for(t << 32 | i)) {
                    Ok(ticket) => inflight.push_back(ticket),
                    Err(ServiceError::Rejected(_)) => tally.rejected += 1,
                    Err(_) => tally.failed += 1,
                }
                if inflight.len() >= window {
                    if let Some(ticket) = inflight.pop_front() {
                        resolve(&mut tally, ticket.wait());
                    }
                }
            }
            for ticket in inflight {
                resolve(&mut tally, ticket.wait());
            }
            tally
        }));
    }

    let mut outcome = Outcome::default();
    for h in handles {
        let t = h.join().expect("submitter thread must not panic");
        outcome.submitted += t.submitted;
        outcome.completed += t.completed;
        outcome.degraded += t.degraded;
        outcome.timeouts += t.timeouts;
        outcome.rejected += t.rejected;
        outcome.failed += t.failed;
        outcome.unsorted += t.unsorted;
    }
    outcome.wall_ns = start.elapsed().as_nanos() as u64;
    done.store(true, Ordering::Relaxed);
    if let Some(s) = sampler {
        outcome.exports = s.join().expect("sampler thread must not panic");
    }
    let stats = service.stats();
    for t in stats.tenants.values() {
        outcome.latency.merge(&t.latency);
    }
    outcome
}

fn steady_config() -> ServiceConfig {
    ServiceConfig {
        queue_capacity: 8192,
        shed_watermark: 6144,
        coalesce_budget_ns: 200_000,
        max_batch_lanes: 256,
        request_timeout_ns: 2_000_000_000,
        workers: 4,
        ..ServiceConfig::default()
    }
}

/// The nightly scenario matrix at `scale` requests for the steady
/// row (the other rows scale proportionally).
#[must_use]
pub fn scenarios(scale: u64) -> Vec<Scenario> {
    let steady = Scenario {
        name: "steady_state",
        requests: scale,
        threads: 4,
        window: 512,
        config: steady_config(),
        fault_plan: FaultPlan::disabled(),
        export_obs: false,
    };
    let burst = Scenario {
        name: "burst_overload",
        requests: scale / 2,
        threads: 8,
        window: 4096,
        config: ServiceConfig {
            queue_capacity: 512,
            shed_watermark: 384,
            coalesce_budget_ns: 200_000,
            max_batch_lanes: 256,
            request_timeout_ns: 20_000_000,
            workers: 2,
            ..ServiceConfig::default()
        },
        fault_plan: FaultPlan::disabled(),
        export_obs: false,
    };
    let faulted = Scenario {
        name: "fault_injected",
        requests: scale / 10,
        threads: 4,
        window: 128,
        config: ServiceConfig {
            breaker: pns_service::BreakerConfig {
                // Keep admitting under heavy injection: this scenario
                // measures the ladder, not the breaker.
                trip_pct: 0,
                ..pns_service::BreakerConfig::default()
            },
            ..steady_config()
        },
        fault_plan: FaultPlan::random(0xE22, 10_000),
        export_obs: false,
    };
    vec![steady, burst, faulted]
}

/// One scenario's row in `BENCH_e22_service.json`.
#[derive(Debug, Clone, Serialize)]
pub struct E22Row {
    /// Scenario name — the row identity.
    pub id: String,
    /// Requests submitted / submitter threads / service workers.
    pub requests: u64,
    /// Submitter threads.
    pub threads: u64,
    /// Completed (sorted) responses, including degraded ones.
    pub completed: u64,
    /// Quarantine-rung completions.
    pub degraded: u64,
    /// Typed timeouts.
    pub timeouts: u64,
    /// Typed admission rejections.
    pub rejected: u64,
    /// Terminal failures (must be 0).
    pub failed: u64,
    /// p50 queue-to-response latency of completed requests, ms.
    pub p50_ms: f64,
    /// p99 queue-to-response latency of completed requests, ms.
    pub p99_ms: f64,
    /// Sustained request rate over the run, thousands/sec
    /// (informational: not a compared metric).
    pub throughput_kreq: f64,
    /// Throughput cost of the enabled-obs export sampler, percent
    /// (steady row only, `null` elsewhere; informational name on
    /// purpose — asserted against the 5% budget here, not host-diffed
    /// by the sentinel, which skips `null` values).
    pub obs_tax_pct: Option<f64>,
    /// Scenario invariants held (accounting, zero failures, sortedness,
    /// scenario-specific expectations).
    pub ok: bool,
}

/// The enabled-obs budget (matches the tracing tax bound from E17/E21).
pub const OBS_TAX_BUDGET_PCT: f64 = 5.0;

#[allow(clippy::cast_precision_loss)]
fn row_from(
    scenario: &Scenario,
    outcome: &Outcome,
    obs_tax_pct: Option<f64>,
    extra_ok: bool,
) -> E22Row {
    let ok = outcome.fully_accounted()
        && outcome.failed == 0
        && outcome.unsorted == 0
        && outcome.completed > 0
        && extra_ok;
    E22Row {
        id: scenario.name.to_owned(),
        requests: outcome.submitted,
        threads: scenario.threads,
        completed: outcome.completed,
        degraded: outcome.degraded,
        timeouts: outcome.timeouts,
        rejected: outcome.rejected,
        failed: outcome.failed,
        p50_ms: outcome.latency.quantile_ns(0.5) as f64 / 1e6,
        p99_ms: outcome.latency.quantile_ns(0.99) as f64 / 1e6,
        throughput_kreq: outcome.throughput_per_sec() / 1e3,
        obs_tax_pct,
        ok,
    }
}

/// Run the scenario matrix at `scale` and build the artifact rows.
#[must_use]
pub fn collect_at(scale: u64) -> Vec<E22Row> {
    let mut rows = Vec::new();
    for scenario in scenarios(scale) {
        let outcome = drive(&scenario);
        let (obs_tax, extra_ok) = match scenario.name {
            "steady_state" => {
                // Same load again with the registry sampler attached:
                // the throughput delta is the enabled-obs tax. One
                // paired run is noise-dominated at these wall times, so
                // take the smallest delta over repeated pairs — the
                // true tax is a lower bound every pair carries, while
                // scheduler noise inflates pairs independently.
                let obs_scenario = Scenario {
                    export_obs: true,
                    ..scenario.clone()
                };
                let pairs = if scale >= 500_000 { 2 } else { 3 };
                let mut tax = f64::INFINITY;
                let mut obs_ok = true;
                let mut plain = outcome.clone();
                for pair in 0..pairs {
                    if pair > 0 {
                        plain = drive(&scenario);
                    }
                    let obs_outcome = drive(&obs_scenario);
                    tax = tax.min(
                        ((plain.throughput_per_sec() - obs_outcome.throughput_per_sec())
                            / plain.throughput_per_sec()
                            * 100.0)
                            .max(0.0),
                    );
                    obs_ok &= obs_outcome.fully_accounted()
                        && obs_outcome.failed == 0
                        && obs_outcome.exports > 0;
                }
                obs_ok &= tax < OBS_TAX_BUDGET_PCT;
                // Steady state admits everything: nothing sheds.
                (
                    Some(tax),
                    obs_ok && outcome.rejected == 0 && outcome.timeouts == 0,
                )
            }
            // The burst must actually overload: typed sheds observed.
            "burst_overload" => (None, outcome.rejected > 0),
            // The ladder must land every faulted request.
            "fault_injected" => (None, outcome.timeouts == 0 && outcome.rejected == 0),
            _ => (None, true),
        };
        rows.push(row_from(&scenario, &outcome, obs_tax, extra_ok));
    }
    rows
}

/// Benchmark-scale collection for the nightly artifact.
#[must_use]
pub fn collect() -> Vec<E22Row> {
    collect_at(200_000)
}

/// Build the printable report from collected rows.
#[must_use]
pub fn report_from_rows(rows: &[E22Row]) -> Report {
    let mut report = Report::new(
        "e22_service",
        "Extension: sorting-as-a-service under load — steady-state \
         latency, burst-overload shedding with full accounting, and the \
         fault-injection degradation ladder, all panic-free",
        &[
            "scenario",
            "requests",
            "threads",
            "completed",
            "degraded",
            "timeouts",
            "rejected",
            "failed",
            "p50 ms",
            "p99 ms",
            "kreq/s",
            "obs tax %",
            "ok",
        ],
    );
    for row in rows {
        report.check(row.ok);
        report.row(&[
            row.id.clone(),
            row.requests.to_string(),
            row.threads.to_string(),
            row.completed.to_string(),
            row.degraded.to_string(),
            row.timeouts.to_string(),
            row.rejected.to_string(),
            row.failed.to_string(),
            format!("{:.3}", row.p50_ms),
            format!("{:.3}", row.p99_ms),
            format!("{:.1}", row.throughput_kreq),
            row.obs_tax_pct
                .map_or_else(|| "-".to_owned(), |t| format!("{t:.2}")),
            row.ok.to_string(),
        ]);
    }
    report.note(&format!(
        "All scenarios serve path(3)^2 (9 keys/request) so the service \
         layer, not the sort kernel, dominates. `ok` requires every \
         submitted request to resolve to exactly one typed outcome with \
         zero terminal failures and zero unsorted responses; steady \
         state additionally bounds the metrics-export tax under \
         {OBS_TAX_BUDGET_PCT}% and forbids sheds, burst overload must \
         observe typed sheds, and fault injection must complete every \
         request through the retry/quarantine ladder. p50/p99 are \
         queue-to-response latencies of completed requests from the \
         service's own per-tenant histograms (log-bucketed, upper \
         bounds)."
    ));
    report
}

/// Run the experiment end to end (test-scale counts).
#[must_use]
pub fn run() -> Report {
    report_from_rows(&collect_at(20_000))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scenario_matrix_holds_at_test_scale() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }
}
