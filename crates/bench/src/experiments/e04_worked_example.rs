//! E04 — Figs. 12–15: the paper's complete 27-key worked example,
//! replayed state by state.

use crate::Report;
use pns_core::merge::StdBaseSorter;
use pns_core::trace::multiway_merge_traced;
use pns_core::Counters;

fn fmt_seq(s: &[u32]) -> String {
    s.iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Replay the worked example and report every intermediate state shown in
/// the figures, checking each against the paper.
#[must_use]
pub fn run() -> Report {
    let mut report = Report::new(
        "e04_worked_example",
        "Figs. 12-15: the 27-key worked example, state by state",
        &["state", "value", "matches paper"],
    );
    let inputs = vec![
        vec![0u32, 4, 4, 5, 5, 7, 8, 8, 9],
        vec![1, 4, 5, 5, 5, 6, 7, 7, 8],
        vec![0, 0, 1, 1, 1, 2, 3, 4, 9],
    ];
    let mut counters = Counters::new();
    let t = multiway_merge_traced(&inputs, &StdBaseSorter, &mut counters);

    let check = |report: &mut Report, name: &str, got: &[u32], expect: &[u32]| {
        let ok = got == expect;
        report.check(ok);
        report.row(&[name.to_owned(), fmt_seq(got), ok.to_string()]);
    };

    for (u, a) in t.a.iter().enumerate() {
        check(&mut report, &format!("A_{u}"), a, &inputs[u]);
    }
    // Fig. 12: the distributed columns.
    check(&mut report, "B_00", &t.b[0][0], &[0, 7, 8]);
    check(&mut report, "B_10", &t.b[1][0], &[1, 6, 7]);
    check(&mut report, "B_20", &t.b[2][0], &[0, 2, 3]);
    check(&mut report, "B_01", &t.b[0][1], &[4, 5, 8]);
    check(&mut report, "B_11", &t.b[1][1], &[4, 5, 7]);
    check(&mut report, "B_21", &t.b[2][1], &[0, 1, 4]);
    check(&mut report, "B_02", &t.b[0][2], &[4, 5, 9]);
    check(&mut report, "B_12", &t.b[1][2], &[5, 5, 8]);
    check(&mut report, "B_22", &t.b[2][2], &[1, 1, 9]);
    // Fig. 13b: merged columns.
    check(&mut report, "C_0", &t.c[0], &[0, 0, 1, 2, 3, 6, 7, 7, 8]);
    check(&mut report, "C_1", &t.c[1], &[0, 1, 4, 4, 4, 5, 5, 7, 8]);
    check(&mut report, "C_2", &t.c[2], &[1, 1, 4, 5, 5, 5, 8, 9, 9]);
    // Fig. 15a-d.
    check(&mut report, "F_0", &t.f[0], &[0, 0, 0, 1, 1, 1, 1, 4, 4]);
    check(&mut report, "F_1", &t.f[1], &[6, 5, 5, 5, 5, 4, 4, 3, 2]);
    check(&mut report, "F_2", &t.f[2], &[5, 7, 7, 7, 8, 8, 8, 9, 9]);
    check(&mut report, "G_0", &t.g[0], &[0, 0, 0, 1, 1, 1, 1, 3, 2]);
    check(&mut report, "G_1", &t.g[1], &[6, 5, 5, 5, 5, 4, 4, 4, 4]);
    check(&mut report, "H_1", &t.h[1], &[5, 5, 5, 5, 5, 4, 4, 4, 4]);
    check(&mut report, "H_2", &t.h[2], &[6, 7, 7, 7, 8, 8, 8, 9, 9]);
    let expect_sorted: Vec<u32> = {
        let mut v: Vec<u32> = inputs.iter().flatten().copied().collect();
        v.sort_unstable();
        v
    };
    check(&mut report, "S", &t.s, &expect_sorted);

    let ok_units = counters.s2_units == 3 && counters.route_units == 2;
    report.check(ok_units);
    report.note(&format!(
        "Fig. 15b's exchange (keys 3,2 ↔ 4,4) and Fig. 15c's exchange \
         (5 ↔ 6) are visible in the F→G and G→H rows. Lemma 3 accounting \
         for k = 3: 3 S2 units, 2 routing units — measured \
         ({}, {}): {ok_units}",
        counters.s2_units, counters.route_units
    ));
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_state_matches_the_paper() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }
}
