//! E20 (extension) — the bit-sliced vertical tier vs the flat kernel
//! batch. Deterministic claims:
//!
//! 1. The bit path is exact: 64 zero-one lanes packed one bit per lane
//!    into a `u64` word per node land, lane for lane, exactly where
//!    `run_kernel_batch` puts the scalar 0/1 vectors — raw and
//!    optimized lowerings.
//! 2. The column path is exact: a full-key batch of one word block
//!    plus a partial tail is bit-identical to `run_kernel_batch` on
//!    both lowerings.
//! 3. Fault parity: `run_vertical_batch_with_faults` produces the same
//!    reports and the same final keys as `run_batch_with_faults` under
//!    the same plan and policy.
//! 4. When an allocation probe is supplied (the `e20_vertical_speedup`
//!    binary installs a counting global allocator), warm
//!    `run_vertical_bits` calls perform **zero** heap allocations.
//!
//! Wall-clock columns (kernel batch vs packed bits on the same 64
//! zero-one lanes, and the full-key column path) are informational —
//! they depend on the host — and are what the nightly
//! `BENCH_e20_vertical.json` artifact tracks over time. The ISSUE-6
//! acceptance bar — bits ≥ 4× over the kernel batch on 0/1 lanes — is
//! asserted by the binary, where timings are release-mode.

use crate::Report;
use pns_graph::factories;
use pns_simulator::bsp::BspMachine;
use pns_simulator::{
    compile, unpack_zero_one_lane, BitScratch, FaultPlan, Hypercube2Sorter, Machine,
    OetSnakeSorter, Pg2Sorter, RetryPolicy, ScratchPool, ShearSorter, VerticalPool, WORD_LANES,
};
use serde::Serialize;
use std::time::Instant;

/// Full-key lanes per column-path timing pass: one word block plus a
/// 6-lane tail, so the timed path includes the partial final word.
const COL_BATCH: usize = 70;
/// Timed repetitions per executor.
const REPS: usize = 64;

fn lcg_keys(len: u64, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..len)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(i | 1);
            state >> 33
        })
        .collect()
}

/// Full-width random words: bit `l` of `words[i]` is lane `l`'s 0/1
/// key at node `i`, so one call seeds 64 independent 0/1 lanes at once
/// (the mask-packing helpers cap nodes at 64; direct word generation
/// does not, and petersen² has 100 nodes).
fn random_words(len: u64, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state ^ (state >> 29)
        })
        .collect()
}

/// One measured configuration, as serialized into
/// `BENCH_e20_vertical.json`.
#[derive(Debug, Clone, Serialize)]
pub struct E20Row {
    /// Factor graph name.
    pub factor: String,
    /// Product dimensions.
    pub r: usize,
    /// `N^r`.
    pub nodes: u64,
    /// Rounds in the vertical program (= the kernel's rounds).
    pub rounds: usize,
    /// Word-level operations per `run_vertical_bits` call.
    pub word_ops: usize,
    /// Wall-time for `REPS` kernel-batch runs of the 64 scalar 0/1
    /// lanes, ms.
    pub kernel01_ms: f64,
    /// Wall-time for `REPS` warm `run_vertical_bits` calls on the same
    /// 64 lanes packed into one word block, ms.
    pub bits_ms: f64,
    /// `kernel01_ms / bits_ms` — the headline E20 ratio.
    pub bit_speedup: f64,
    /// Wall-time for `REPS` kernel-batch runs of the 70 full-key
    /// lanes, ms.
    pub kernel_full_ms: f64,
    /// Wall-time for `REPS` warm `run_vertical_batch` runs of the same
    /// full-key lanes, ms.
    pub cols_ms: f64,
    /// `kernel_full_ms / cols_ms` (informational; the column path
    /// trades word-level parallelism for transpose locality).
    pub col_speedup: f64,
    /// Heap allocations across the `REPS` timed warm
    /// `run_vertical_bits` calls (probe builds only) — claim 4
    /// requires exactly zero.
    pub bits_allocs: Option<u64>,
    /// Claims 1–4 for this configuration.
    pub ok: bool,
}

/// Measure every configuration. `probe`, when supplied, reads a
/// process-global allocation counter (the binary installs one as
/// `#[global_allocator]`); library callers pass `None` and the
/// allocation column stays empty.
#[must_use]
pub fn collect(probe: Option<fn() -> u64>) -> Vec<E20Row> {
    let cases: Vec<(pns_graph::Graph, usize, &dyn Pg2Sorter)> = vec![
        (
            Machine::prepare_factor(&factories::petersen()),
            2,
            &ShearSorter,
        ),
        (factories::path(3), 3, &ShearSorter),
        (factories::k2(), 6, &Hypercube2Sorter),
        (factories::star(4), 2, &OetSnakeSorter),
    ];
    let allocs = |probe: Option<fn() -> u64>| probe.map_or(0, |p| p());
    let mut rows = Vec::new();
    for (factor, r, sorter) in cases {
        let program = compile(&factor, r, sorter);
        let optimized = program.optimized();
        let bsp = BspMachine::new(&factor, r);
        let len = bsp.shape().len();
        let n = len as usize;
        let vertical = bsp
            .lower_vertical(&program)
            .expect("compiled programs validate");
        let vertical_opt = bsp
            .lower_vertical(&optimized)
            .expect("optimized programs validate");
        let kernel = bsp.lower(&program).expect("compiled programs validate");
        let kernel_opt = bsp.lower(&optimized).expect("optimized programs validate");

        // 64 random 0/1 lanes, as packed words and as scalar vectors.
        let input_words = random_words(len, 0xE20);
        let batch01: Vec<Vec<u64>> = (0..WORD_LANES)
            .map(|l| (0..n).map(|i| (input_words[i] >> l) & 1).collect())
            .collect();

        // Claim 1: the bit path is lane-exact vs the kernel batch.
        let mut pool = ScratchPool::new();
        let mut kernel01 = batch01.clone();
        bsp.run_kernel_batch(&mut kernel01, &kernel, &mut pool);
        let mut bits = BitScratch::new();
        let mut identical = true;
        for v in [&vertical, &vertical_opt] {
            let mut words = input_words.clone();
            bsp.run_vertical_bits(&mut words, v, &mut bits);
            for (l, want) in kernel01.iter().enumerate() {
                let got = unpack_zero_one_lane(&words, l);
                identical &= got.iter().map(|&k| u64::from(k)).eq(want.iter().copied());
            }
        }

        // Claim 2: the column path is bit-identical on full keys.
        let full: Vec<Vec<u64>> = (0..COL_BATCH as u64)
            .map(|s| lcg_keys(len, s * 2654435761 + 7))
            .collect();
        let mut kernel_full = full.clone();
        bsp.run_kernel_batch(&mut kernel_full, &kernel, &mut pool);
        {
            let mut check = full.clone();
            bsp.run_kernel_batch(&mut check, &kernel_opt, &mut pool);
            identical &= check == kernel_full;
        }
        let mut vpool = VerticalPool::new();
        for v in [&vertical, &vertical_opt] {
            let mut cols = full.clone();
            bsp.run_vertical_batch(&mut cols, v, &mut vpool);
            identical &= cols == kernel_full;
        }

        // Claim 3: fault parity under a shared plan and policy.
        let plan = FaultPlan::random(0xE20, 5_000);
        let policy = RetryPolicy::default();
        let mut fa = full.clone();
        let ra = bsp.run_batch_with_faults(&mut fa, &program, &plan, &policy);
        let mut fb = full.clone();
        let rb = bsp.run_vertical_batch_with_faults(&mut fb, &vertical, &plan, &policy, &mut vpool);
        let fault_parity = ra == rb && fa == fb;

        // Timed passes. Inputs are restored with `clone_from_slice` /
        // `copy_from_slice` so the loops themselves allocate nothing
        // and the allocation delta is attributable to the executor.
        let mut work01 = batch01.clone();
        let t0 = Instant::now();
        for _ in 0..REPS {
            for (w, b) in work01.iter_mut().zip(&batch01) {
                w.clone_from_slice(b);
            }
            bsp.run_kernel_batch(&mut work01, &kernel, &mut pool);
        }
        let kernel01_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut words = input_words.clone();
        bsp.run_vertical_bits(&mut words, &vertical, &mut bits); // warm-up
        let a0 = allocs(probe);
        let t1 = Instant::now();
        for _ in 0..REPS {
            words.copy_from_slice(&input_words);
            bsp.run_vertical_bits(&mut words, &vertical, &mut bits);
        }
        let bits_ms = t1.elapsed().as_secs_f64() * 1e3;
        let bits_allocs = probe.map(|p| p() - a0);

        // Claim 4: zero allocations per warm bit run (probe builds).
        let alloc_ok = bits_allocs.is_none_or(|a| a == 0);

        let mut work = full.clone();
        let t2 = Instant::now();
        for _ in 0..REPS {
            for (w, b) in work.iter_mut().zip(&full) {
                w.clone_from_slice(b);
            }
            bsp.run_kernel_batch(&mut work, &kernel, &mut pool);
        }
        let kernel_full_ms = t2.elapsed().as_secs_f64() * 1e3;

        let t3 = Instant::now();
        for _ in 0..REPS {
            for (w, b) in work.iter_mut().zip(&full) {
                w.clone_from_slice(b);
            }
            bsp.run_vertical_batch(&mut work, &vertical, &mut vpool);
        }
        let cols_ms = t3.elapsed().as_secs_f64() * 1e3;

        rows.push(E20Row {
            factor: factor.name().to_owned(),
            r,
            nodes: len,
            rounds: vertical.rounds(),
            word_ops: vertical.word_ops(),
            kernel01_ms,
            bits_ms,
            bit_speedup: kernel01_ms / bits_ms.max(f64::EPSILON),
            kernel_full_ms,
            cols_ms,
            col_speedup: kernel_full_ms / cols_ms.max(f64::EPSILON),
            bits_allocs,
            ok: identical && fault_parity && alloc_ok,
        });
    }
    rows
}

/// Build the experiment report from measured rows (separated from
/// [`collect`] so the binary can serialize the same rows to JSON).
#[must_use]
pub fn report_from_rows(rows: &[E20Row]) -> Report {
    let mut report = Report::new(
        "e20_vertical_speedup",
        "Extension: bit-sliced vertical tier — packed 0/1 words and \
         full-key column blocks bit-identical to the kernel batch, \
         fault parity under shared plans, zero heap allocations per \
         warm run_vertical_bits call",
        &[
            "factor",
            "r",
            "nodes",
            "rounds",
            "word ops",
            "kernel 0/1 ms",
            "bits ms",
            "bit speedup",
            "col speedup",
            "bits allocs",
            "match",
        ],
    );
    for row in rows {
        report.check(row.ok);
        report.row(&[
            row.factor.clone(),
            row.r.to_string(),
            row.nodes.to_string(),
            row.rounds.to_string(),
            row.word_ops.to_string(),
            format!("{:.2}", row.kernel01_ms),
            format!("{:.3}", row.bits_ms),
            format!("{:.1}x", row.bit_speedup),
            format!("{:.2}x", row.col_speedup),
            row.bits_allocs.map_or("-".to_owned(), |a| a.to_string()),
            row.ok.to_string(),
        ]);
    }
    report.note(&format!(
        "{REPS} reps per timed pass. `bit speedup` compares \
         run_kernel_batch on {WORD_LANES} scalar 0/1 lanes against one \
         run_vertical_bits call on the same lanes packed one bit per \
         lane (compare-exchange on 0/1 keys is AND/OR, so one word op \
         replaces {WORD_LANES} comparator visits); the ISSUE-6 bar is \
         ≥ 4x, enforced by the release binary. `col speedup` is the \
         full-key column path on {COL_BATCH} lanes (one word block plus \
         a partial tail) against the same kernel batch — informational. \
         Everything in `match` is deterministic: lane-exact bit path, \
         bit-identical column path, fault-executor parity, and (binary \
         runs) zero allocations across all {REPS} warm bit calls."
    ));
    report
}

/// Regenerate the vertical-speedup table (no allocation probe; the
/// `e20_vertical_speedup` binary adds one).
#[must_use]
pub fn run() -> Report {
    report_from_rows(&collect(None))
}

#[cfg(test)]
mod tests {
    #[test]
    fn vertical_speedup_table_matches() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }
}
