//! E17 (extension) — the observability layer reconciles with the cost
//! accounting. For every engine kind the event stream must tell the
//! same story as [`pns_core::Counters`]:
//!
//! 1. **Charged and executed engines** emit one `S2Unit`/`RouteUnit`
//!    event per charged unit (at exactly the sites where `network_sort`
//!    increments the counters), so summing the events' `units` fields
//!    reproduces the counter totals event by event.
//! 2. **Compiled machines** lower the program past logical rounds, so
//!    they emit one aggregated `S2Unit`/`RouteUnit` pair per sort (and
//!    per batch) whose `units` equal the charged counters times the
//!    number of vectors sorted — the sums still reconcile exactly.
//! 3. `RoundStart`/`RoundEnd` events are well-paired, cache events
//!    match [`pns_simulator::CacheStats`], and the JSONL encoding
//!    round-trips losslessly (parse every line back, re-aggregate, get
//!    the same totals).
//!
//! With `PNS_OBS=jsonl[:path]` or `PNS_OBS=summary` the same stream is
//! teed to the requested sink, which is how `obs.jsonl` artifacts are
//! produced in CI.

use crate::Report;
use pns_graph::factories;
use pns_obs::{EventLogger, JsonlSink, MemorySink, MultiSink, ObsSummary, Sink, TimedEvent};
use pns_simulator::{
    CostModel, Hypercube2Sorter, Machine, OetSnakeSorter, ProgramCache, ShearSorter,
};

fn lcg_keys(len: u64, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..len)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(i | 1);
            state >> 33
        })
        .collect()
}

/// A logger that records into memory and, when `PNS_OBS` asks for it,
/// tees the same stream into the user's sink.
fn memory_logger(label: &str) -> (EventLogger, pns_obs::MemoryReader) {
    let (mem, reader) = MemorySink::with_capacity(1 << 16);
    let mut sinks: Vec<Box<dyn Sink>> = vec![Box::new(mem)];
    if let Some(env_sink) = pns_obs::from_env(label) {
        sinks.push(env_sink);
    }
    (EventLogger::new(Box::new(MultiSink::new(sinks))), reader)
}

/// Write `events` to a fresh JSONL file, parse every line back, and
/// return the re-parsed events (empty on any I/O or parse failure).
fn jsonl_roundtrip(events: &[TimedEvent], tag: &str) -> Vec<TimedEvent> {
    let path = std::env::temp_dir().join(format!("pns_e17_{tag}.jsonl"));
    let Some(path_str) = path.to_str() else {
        return Vec::new();
    };
    let _ = std::fs::remove_file(&path);
    let Ok(mut sink) = JsonlSink::append(path_str) else {
        return Vec::new();
    };
    sink.record(events);
    sink.finish();
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    let parsed: Option<Vec<TimedEvent>> = text
        .lines()
        .map(|line| serde_json::from_str(line).ok())
        .collect();
    let _ = std::fs::remove_file(&path);
    parsed.unwrap_or_default()
}

/// Regenerate the event-vs-counter reconciliation table.
///
/// # Panics
///
/// Panics if a machine rejects its own shape-length key vector.
#[must_use]
pub fn run() -> Report {
    let mut report = Report::new(
        "e17_observability",
        "Extension: typed event tracing — aggregated S2Unit/RouteUnit \
         events reconcile exactly with Counters on every engine kind, \
         rounds pair up, cache events match CacheStats, JSONL round-trips",
        &[
            "case",
            "engine",
            "sorts",
            "events",
            "s2 ev",
            "s2 ctr",
            "route ev",
            "route ctr",
            "cache(h/m)",
            "match",
        ],
    );

    // One closure per engine kind: build the machine, sort `sorts`
    // vectors, return the summed counters and cache stats line.
    type Setup<'a> = (
        &'a str,
        &'a str,
        Box<dyn FnMut(&EventLogger) -> (u64, pns_core::Counters, String)>,
    );
    let charged: Setup = (
        "star(4) r=3",
        "charged",
        Box::new(|logger| {
            let factor = factories::star(4);
            let mut machine = Machine::charged(&factor, 3, CostModel::custom("unit", 1, 1));
            machine.attach_logger(logger.clone());
            let len = machine.shape().len();
            let mut total = pns_core::Counters::new();
            for seed in 0..3u64 {
                let rep = machine.sort(lcg_keys(len, seed * 31 + 5)).expect("length");
                assert!(rep.is_snake_sorted());
                total = total.then(rep.outcome.counters);
            }
            (3, total, "-".to_owned())
        }),
    );
    let executed: Setup = (
        "path(3) r=3",
        "executed",
        Box::new(|logger| {
            let factor = factories::path(3);
            let mut machine = Machine::executed(&factor, 3, &OetSnakeSorter);
            machine.attach_logger(logger.clone());
            let len = machine.shape().len();
            let mut total = pns_core::Counters::new();
            for seed in 0..2u64 {
                let rep = machine.sort(lcg_keys(len, seed * 17 + 3)).expect("length");
                assert!(rep.is_snake_sorted());
                total = total.then(rep.outcome.counters);
            }
            (2, total, "-".to_owned())
        }),
    );
    let compiled: Setup = (
        "k2 r=4",
        "compiled",
        Box::new(|logger| {
            let factor = factories::k2();
            let mut cache = ProgramCache::new();
            cache.attach_logger(logger.clone());
            let mut machine = Machine::compiled(&factor, 4, &Hypercube2Sorter, &cache);
            machine.attach_logger(logger.clone());
            let len = machine.shape().len();
            let mut total = pns_core::Counters::new();
            // One single-vector sort plus a 4-vector batch: 5 sorts, each
            // charged the full logical cost.
            let rep = machine.sort(lcg_keys(len, 1)).expect("length");
            assert!(rep.is_snake_sorted());
            total = total.then(rep.outcome.counters);
            let batch: Vec<Vec<u64>> = (0..4).map(|s| lcg_keys(len, s * 7 + 2)).collect();
            for rep in machine.sort_batch(batch) {
                let rep = rep.expect("lengths");
                assert!(rep.is_snake_sorted());
                total = total.then(rep.outcome.counters);
            }
            // A second machine on the same key: served from the cache.
            let mut again = Machine::compiled(&factor, 4, &Hypercube2Sorter, &cache);
            again.attach_logger(logger.clone());
            let rep = again.sort(lcg_keys(len, 9)).expect("length");
            assert!(rep.is_snake_sorted());
            total = total.then(rep.outcome.counters);
            (6, total, cache.stats().to_string())
        }),
    );
    let optimized: Setup = (
        "shear 4x4 r=2 opt",
        "compiled+opt",
        Box::new(|logger| {
            let factor = factories::path(4);
            let mut cache = ProgramCache::new();
            cache.attach_logger(logger.clone());
            let mut machine = Machine::compiled_optimized(&factor, 2, &ShearSorter, &cache);
            machine.attach_logger(logger.clone());
            let len = machine.shape().len();
            let batch: Vec<Vec<u64>> = (0..3).map(|s| lcg_keys(len, s + 40)).collect();
            let mut total = pns_core::Counters::new();
            for rep in machine.sort_batch(batch) {
                let rep = rep.expect("lengths");
                assert!(rep.is_snake_sorted());
                total = total.then(rep.outcome.counters);
            }
            (3, total, cache.stats().to_string())
        }),
    );

    for (case, engine, mut body) in [charged, executed, compiled, optimized] {
        let (logger, reader) = memory_logger(&format!("e17_observability {case}"));
        let (sorts, counters, cache_line) = body(&logger);
        logger.finish();
        let events = reader.events();
        let summary = ObsSummary::from_events(&events);

        // The reconciliation invariant: summed unit events == counters.
        let s2_ok = summary.s2_units == counters.s2_units;
        let route_ok = summary.route_units == counters.route_units;
        // Round events (when present) are well-paired.
        let rounds_ok = summary.unmatched_rounds() == 0;
        // JSONL encodes the stream losslessly.
        let reparsed = jsonl_roundtrip(&events, engine);
        let json_summary = ObsSummary::from_events(&reparsed);
        let json_ok = reparsed.len() == events.len()
            && json_summary.s2_units == summary.s2_units
            && json_summary.route_units == summary.route_units
            && reader.dropped() == 0;

        let ok = s2_ok && route_ok && rounds_ok && json_ok && !events.is_empty();
        report.check(ok);
        report.row(&[
            case.to_owned(),
            engine.to_owned(),
            sorts.to_string(),
            events.len().to_string(),
            summary.s2_units.to_string(),
            counters.s2_units.to_string(),
            summary.route_units.to_string(),
            counters.route_units.to_string(),
            cache_line,
            ok.to_string(),
        ]);
    }

    report.note(
        "\"s2 ev\"/\"route ev\" sum the `units` fields of every S2Unit/\
         RouteUnit event in the stream; \"s2 ctr\"/\"route ctr\" sum the \
         Counters returned by the same sorts. Charged/executed engines \
         emit one event per charged unit; compiled machines emit one \
         aggregated pair per sort (logical rounds do not survive \
         lowering), so equality holds by construction on both paths — \
         the experiment checks it stays that way. Every stream also \
         survives a JSONL write/parse round-trip with identical totals. \
         Set PNS_OBS=jsonl[:path] or PNS_OBS=summary to tee the same \
         events to a file or a stderr table.",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn events_reconcile_with_counters() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }
}
