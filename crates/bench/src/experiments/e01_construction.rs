//! E01 — Figs. 1–2: recursive construction of product networks and their
//! dimension-erasure decomposition, with closed-form structure checks.

use crate::Report;
use pns_graph::factories;
use pns_product::stats::{product_stats, verify_stats};
use pns_product::subgraph::{subgraph_is_lower_product, subgraph_nodes, SubgraphSpec};
use pns_product::ProductNetwork;

/// Regenerate the construction of Figs. 1–2 and verify node/edge/degree/
/// diameter closed forms against explicitly built graphs.
#[must_use]
pub fn run() -> Report {
    let mut report = Report::new(
        "e01_construction",
        "Figs. 1-2: product construction PG_1..PG_3 of the 3-node factor; \
         closed forms N^r, r·N^{r-1}|E|, r·Δ, r·diam",
        &[
            "factor", "r", "nodes", "edges", "max deg", "diameter", "verified",
        ],
    );
    let factors = [
        factories::path(3),
        factories::cycle(4),
        factories::k2(),
        factories::complete_binary_tree(2),
    ];
    for factor in &factors {
        for r in 1..=3 {
            let s = product_stats(factor, r);
            let ok = verify_stats(factor, r);
            report.check(ok);
            report.row(&[
                factor.name().to_owned(),
                r.to_string(),
                s.nodes.to_string(),
                s.edges.to_string(),
                s.max_degree.to_string(),
                s.diameter.to_string(),
                ok.to_string(),
            ]);
        }
    }

    // Fig. 2: erasing dimension-1 edges of PG_3 leaves N copies of PG_2.
    let pg3 = ProductNetwork::new(&factories::path(3), 3);
    let mut decomposition_ok = true;
    for u in 0..3 {
        decomposition_ok &= subgraph_is_lower_product(&pg3, 0, u);
        decomposition_ok &= subgraph_nodes(pg3.shape(), &SubgraphSpec::fix(0, u)).len() == 9;
    }
    report.check(decomposition_ok);
    report.note(&format!(
        "Fig. 2 decomposition: erasing dimension-1 edges of the 27-node PG_3 \
         leaves three 9-node subgraphs, each isomorphic to PG_2: {decomposition_ok}"
    ));
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_rows_match() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
        assert_eq!(r.rows.len(), 12);
    }
}
