//! E14 (extension) — the BSP machine model: the algorithm compiled to
//! per-node, edge-aligned operations (Section 4's "each processor holds
//! one of the keys … memory to hold at most two values", enforced by a
//! validating machine). On Hamiltonian-labeled factors the compiled round
//! count equals the executed engine's step count exactly; non-Hamiltonian
//! factors pay relay rounds.

use crate::Report;
use pns_graph::factories;
use pns_order::radix::Shape;
use pns_simulator::bsp::{compile, BspMachine, Op};
use pns_simulator::{
    network_sort, ExecutedEngine, Hypercube2Sorter, Machine, OetSnakeSorter, Pg2Sorter, ShearSorter,
};

/// Regenerate the BSP compilation table.
#[must_use]
pub fn run() -> Report {
    let mut report = Report::new(
        "e14_bsp",
        "Extension: compiled BSP programs — rounds, ops, relay moves; \
         rounds = executed steps on Hamiltonian labelings",
        &[
            "factor",
            "r",
            "sorter",
            "bsp rounds",
            "executed steps",
            "compare ops",
            "relay moves",
            "sorted",
            "match",
        ],
    );
    let cases: Vec<(pns_graph::Graph, usize, &dyn Pg2Sorter, &str, bool)> = vec![
        (factories::path(4), 2, &ShearSorter, "shearsort", true),
        (factories::path(3), 3, &ShearSorter, "shearsort", true),
        (factories::k2(), 6, &Hypercube2Sorter, "3-step", true),
        (
            Machine::prepare_factor(&factories::petersen()),
            2,
            &ShearSorter,
            "shearsort",
            true,
        ),
        (factories::star(4), 2, &OetSnakeSorter, "oet-snake", false),
        (
            Machine::prepare_factor(&factories::complete_binary_tree(3)),
            2,
            &OetSnakeSorter,
            "oet-snake",
            false,
        ),
    ];
    for (factor, r, sorter, sorter_name, hamiltonian) in cases {
        let program = compile(&factor, r, sorter);
        let shape = Shape::new(factor.n(), r);
        let machine = BspMachine::new(&factor, r);
        let len = shape.len();
        let mut keys: Vec<u64> = (0..len).map(|x| (x * 2654435761) % 1009).collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        machine.run(&mut keys, &program);
        let sorted_ok = pns_simulator::netsort::read_snake_order(shape, &keys) == expect;

        let mut engine = ExecutedEngine::new(&factor, shape, sorter);
        let mut exec_keys: Vec<u64> = (0..len).rev().collect();
        let exec = network_sort(shape, &mut exec_keys, &mut engine);

        let compares = program
            .round_ops()
            .iter()
            .flatten()
            .filter(|op| matches!(op, Op::CompareExchange { .. }))
            .count();
        let moves = program
            .round_ops()
            .iter()
            .flatten()
            .filter(|op| matches!(op, Op::Move { .. }))
            .count();

        // On Hamiltonian labelings the compiled rounds equal the executed
        // steps and no relays exist; otherwise relays must exist.
        let structure_ok = if hamiltonian {
            program.rounds() as u64 == exec.steps && moves == 0
        } else {
            moves > 0
        };
        let ok = sorted_ok && structure_ok;
        report.check(ok);
        report.row(&[
            factor.name().to_owned(),
            r.to_string(),
            sorter_name.to_owned(),
            program.rounds().to_string(),
            exec.steps.to_string(),
            compares.to_string(),
            moves.to_string(),
            sorted_ok.to_string(),
            ok.to_string(),
        ]);
    }
    report.note(
        "The machine validates every operation: adjacency of each \
         compare/move, per-round edge capacity, transit-slot discipline, \
         and no in-flight values at program end. Obliviousness lets the \
         schedule be compiled once and reused for any input.",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn bsp_compilation_table_matches() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }
}
