//! E13 (extension) — sorting `M = b·N^r` keys with `b` keys per node via
//! merge-split (the replacement principle). The paper's cost model scales
//! linearly: `S_r(b) = b · ((r-1)² S2 + (r-1)(r-2) R)`, and the unit
//! counters stay exactly Theorem 1's.

use crate::Report;
use pns_core::sort::{predicted_route_units, predicted_s2_units};
use pns_order::radix::Shape;
use pns_simulator::block::block_sort;
use pns_simulator::CostModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Regenerate the block-scaling table.
#[must_use]
pub fn run() -> Report {
    let mut report = Report::new(
        "e13_blocks",
        "Extension: b keys per node via merge-split; steps scale exactly \
         linearly in b, unit counts stay (r-1)² and (r-1)(r-2)",
        &[
            "N",
            "r",
            "b",
            "keys",
            "steps",
            "b·keysteps(b=1)",
            "sorted",
            "match",
        ],
    );
    let mut rng = StdRng::seed_from_u64(99);
    for (n, r) in [(3usize, 3usize), (4, 3), (2, 5)] {
        let shape = Shape::new(n, r);
        let model = CostModel::paper_grid(n);
        let mut base_steps = None;
        for b in [1usize, 2, 4, 8] {
            let len = shape.len() as usize * b;
            let keys: Vec<u64> = (0..len).map(|_| rng.random_range(0..100_000)).collect();
            let mut expect = keys.clone();
            expect.sort_unstable();
            let (sorted, outcome) = block_sort(shape, b, keys, model.clone());
            let sorted_ok = sorted == expect;
            if b == 1 {
                base_steps = Some(outcome.steps);
            }
            let scaled = base_steps.expect("b=1 ran first") * b as u64;
            let units_ok = outcome.counters.s2_units == predicted_s2_units(r)
                && outcome.counters.route_units == predicted_route_units(r);
            let ok = sorted_ok && units_ok && outcome.steps == scaled;
            report.check(ok);
            report.row(&[
                n.to_string(),
                r.to_string(),
                b.to_string(),
                len.to_string(),
                outcome.steps.to_string(),
                scaled.to_string(),
                sorted_ok.to_string(),
                ok.to_string(),
            ]);
        }
    }
    report.note(
        "This is the regime the paper's introduction attributes to \
         Columnsort-style algorithms ('behave nicely when the number of \
         keys is large compared with the number of processors'): with \
         merge-split blocks the generalized algorithm covers it too, \
         at exactly b× the one-key-per-node cost.",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn block_scaling_is_linear() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }
}
