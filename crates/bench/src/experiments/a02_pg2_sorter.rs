//! A02 (ablation) — Section 3.2: "The efficiency of that special
//! algorithm [the `N²`-key sorter] has an important effect on the overall
//! complexity of the final sorting algorithm."
//!
//! Theorem 1 makes the effect exactly linear: total steps =
//! `(r-1)²·S2 + (r-1)(r-2)·R`. We swap the executed `PG_2` sorter —
//! odd-even transposition (`S2 = N²`) vs shearsort (`S2 = N(2⌈log N⌉+1)`)
//! — on the same grid and confirm the totals move by exactly the
//! `S2` ratio predicted.

use crate::Report;
use pns_graph::factories;
use pns_simulator::{Machine, OetSnakeSorter, Pg2Sorter, ShearSorter};

fn run_machine(n: usize, r: usize, sorter: &dyn Pg2Sorter) -> (u64, u64) {
    let factor = factories::path(n);
    let mut m = Machine::executed(&factor, r, sorter);
    let s2 = m.s2_steps();
    let len = (n as u64).pow(r as u32);
    let keys: Vec<u64> = (0..len).rev().collect();
    let rep = m.sort(keys).expect("key count");
    assert!(rep.is_snake_sorted());
    (s2, rep.steps())
}

/// Regenerate the base-sorter ablation.
#[must_use]
pub fn run() -> Report {
    let mut report = Report::new(
        "a02_pg2_sorter",
        "Ablation (§3.2): swapping the N²-key sorter moves the total by \
         exactly (r-1)²·ΔS2 — Theorem 1's linear dependence",
        &[
            "N",
            "r",
            "S2 oet (N²)",
            "S2 shear",
            "total oet",
            "total shear",
            "predicted Δ = (r-1)²ΔS2",
            "measured Δ",
            "match",
        ],
    );
    for (n, r) in [(4usize, 2usize), (4, 3), (8, 2), (8, 3), (16, 2)] {
        let (s2_oet, total_oet) = run_machine(n, r, &OetSnakeSorter);
        let (s2_shear, total_shear) = run_machine(n, r, &ShearSorter);
        // Shearsort only beats OET once N(2⌈log N⌉+1) < N², i.e. N ≥ 8;
        // the delta is signed.
        let rr = (r - 1) as i64;
        let predicted_delta = rr * rr * (s2_oet as i64 - s2_shear as i64);
        let measured_delta = total_oet as i64 - total_shear as i64;
        let ok = predicted_delta == measured_delta;
        report.check(ok);
        report.row(&[
            n.to_string(),
            r.to_string(),
            s2_oet.to_string(),
            s2_shear.to_string(),
            total_oet.to_string(),
            total_shear.to_string(),
            predicted_delta.to_string(),
            measured_delta.to_string(),
            ok.to_string(),
        ]);
    }
    report.note(
        "S2(oet) = N² and S2(shear) = N(2⌈log N⌉+1); the total always moves \
         by (r-1)² times the S2 difference and nothing else — the routing \
         term is sorter-independent. This is why §5 shops for the best \
         known two-dimensional sorter per network (Schnorr-Shamir, Kunde, \
         the 3-step hypercube sorter, Batcher-on-SE).",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn sorter_ablation_is_exactly_linear() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }
}
