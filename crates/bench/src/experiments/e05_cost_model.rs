//! E05 — Lemma 3 and Theorem 1: the unit accounting
//! (`(r-1)²` `S2` units, `(r-1)(r-2)` routing units) measured on both the
//! sequence-level algorithm and the network simulator, across factor
//! sizes, dimensions, and input distributions.

use crate::Report;
use pns_core::sort::{predicted_route_units, predicted_s2_units};
use pns_core::{multiway_merge_sort, StdBaseSorter};
use pns_order::radix::Shape;
use pns_simulator::{network_sort, ChargedEngine, CostModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Measure units on both implementations for one `(n, r)`.
#[must_use]
pub fn measure(n: usize, r: usize, seed: u64) -> (u64, u64, u64, u64) {
    let shape = Shape::new(n, r);
    let mut rng = StdRng::seed_from_u64(seed);
    let keys: Vec<u64> = (0..shape.len())
        .map(|_| rng.random_range(0..1000))
        .collect();

    let (_, seq_counters) = multiway_merge_sort(&keys, n, &StdBaseSorter);

    let mut net_keys = keys;
    let mut engine = ChargedEngine::new(CostModel::custom("unit", 1, 1));
    let out = network_sort(shape, &mut net_keys, &mut engine);
    assert!(pns_simulator::netsort::is_snake_sorted(shape, &net_keys));

    (
        seq_counters.s2_units,
        seq_counters.route_units,
        out.counters.s2_units,
        out.counters.route_units,
    )
}

/// Regenerate the Theorem 1 unit table.
#[must_use]
pub fn run() -> Report {
    let mut report = Report::new(
        "e05_cost_model",
        "Lemma 3 / Theorem 1: S2 units (r-1)² and routing units (r-1)(r-2), \
         sequence level vs network simulator",
        &[
            "N", "r", "keys", "S2 pred", "S2 seq", "S2 net", "R pred", "R seq", "R net", "match",
        ],
    );
    for (n, r) in [
        (2usize, 2usize),
        (2, 4),
        (2, 8),
        (2, 10),
        (3, 3),
        (3, 5),
        (4, 4),
        (5, 3),
        (8, 3),
        (16, 2),
    ] {
        let (s2_pred, r_pred) = (predicted_s2_units(r), predicted_route_units(r));
        let (s2_seq, r_seq, s2_net, r_net) = measure(n, r, 42 + r as u64);
        let ok = s2_seq == s2_pred && s2_net == s2_pred && r_seq == r_pred && r_net == r_pred;
        report.check(ok);
        report.row(&[
            n.to_string(),
            r.to_string(),
            (n as u64).pow(r as u32).to_string(),
            s2_pred.to_string(),
            s2_seq.to_string(),
            s2_net.to_string(),
            r_pred.to_string(),
            r_seq.to_string(),
            r_net.to_string(),
            ok.to_string(),
        ]);
    }
    report.note(
        "Both implementations spend exactly the predicted number of parallel \
         PG_2-sort rounds and transposition rounds regardless of the input \
         distribution — the algorithm is oblivious.",
    );

    // The same reconciliation as Counters renders it: one representative
    // measured-vs-predicted table (work-like rows carry no prediction).
    let shape = Shape::new(3, 4);
    let mut rng = StdRng::seed_from_u64(99);
    let keys: Vec<u64> = (0..shape.len())
        .map(|_| rng.random_range(0..1000))
        .collect();
    let (_, counters) = multiway_merge_sort(&keys, 3, &StdBaseSorter);
    let table = counters.versus_predicted(4).to_string();
    report.check(!table.contains("MISMATCH"));
    report.note(&format!(
        "Representative table for N=3, r=4 (`Counters::versus_predicted`):\n\n```\n{table}\n```"
    ));
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn unit_counts_match_theorem_1() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }
}
