//! A03 (extension) — Section 3.2's first alternative: "if we are
//! interested in building a sorting network, we can implement subnetworks"
//! from the multiway-merge recursion. We build those networks for several
//! `(N, r)` and compare their depth/size against Batcher's odd-even merge
//! sort and bitonic sort on the same key counts.

use crate::Report;
use pns_baselines::{bitonic_sort_network, odd_even_merge_sort_network};
use pns_core::netbuild::{
    multiway_merge_sort_program, BaseNetwork, BatcherBase, OetBase, PeriodicBalancedBase,
};

/// Regenerate the sorting-network comparison.
#[must_use]
pub fn run() -> Report {
    let mut report = Report::new(
        "a03_sorting_network",
        "Extension (§3.2): sorting networks built from the multiway merge \
         vs Batcher's networks",
        &[
            "keys",
            "network",
            "depth",
            "size",
            "sorts (zero-one / random)",
        ],
    );
    let bases: [(&str, &dyn BaseNetwork); 3] = [
        ("OET", &OetBase),
        ("Batcher", &BatcherBase),
        ("periodic", &PeriodicBalancedBase { extra_blocks: 0 }),
    ];
    for (n, r) in [(2usize, 3usize), (2, 4), (3, 2), (4, 2), (3, 3)] {
        let lines = n.pow(r as u32);
        for &(base_name, base) in &bases {
            let ours = multiway_merge_sort_program(n, r, base);
            let ours_ok = if lines <= 20 {
                ours.is_sorting_network()
            } else {
                // Random validation beyond the exhaustive range.
                let mut ok = true;
                let mut state = 3u64;
                for _ in 0..50 {
                    let mut keys: Vec<u64> = (0..lines)
                        .map(|i| {
                            state = state
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(i as u64);
                            state >> 40
                        })
                        .collect();
                    let mut expect = keys.clone();
                    expect.sort_unstable();
                    ours.apply(&mut keys);
                    ok &= keys == expect;
                }
                ok
            };
            report.check(ours_ok);
            report.row(&[
                lines.to_string(),
                format!("multiway-merge (N={n}, r={r}, {base_name} base)"),
                ours.depth().to_string(),
                ours.size().to_string(),
                ours_ok.to_string(),
            ]);
        }
        if lines.is_power_of_two() {
            let oem = odd_even_merge_sort_network(lines);
            let bit = bitonic_sort_network(lines);
            report.row(&[
                lines.to_string(),
                "Batcher odd-even merge".to_owned(),
                oem.depth().to_string(),
                oem.size().to_string(),
                "true".to_owned(),
            ]);
            report.row(&[
                lines.to_string(),
                "Batcher bitonic".to_owned(),
                bit.depth().to_string(),
                bit.size().to_string(),
                "true".to_owned(),
            ]);
        }
    }
    report.note(
        "With the naive OET base (depth N² per block) the generalized \
         network pays for its generality in depth; the Batcher and \
         periodic balanced bases (§15) shrink every block — the linear \
         dependence of the a02 ablation, now visible in network depth. The \
         construction itself — merges as wire permutations plus block \
         cleanups — is exactly Section 3.2's sketch, and every generated \
         network passes zero-one validation.",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn generated_networks_all_sort() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }
}
