//! E06 — the Corollary: *any* connected factor graph sorts `N^r` keys in
//! at most `18(r-1)²N + o(r²N)` steps, by emulating the torus with
//! dilation 3 / congestion 2 (slowdown ≤ 6).
//!
//! We measure: (a) the actual emulation slowdown of the torus embedding
//! for assorted connected factors (Hamiltonian-cycle factors get 1,
//! everything else ≤ 6), and (b) the charged steps of sorting under the
//! universal cost model against the `18(r-1)²N` bound.

use crate::Report;
use pns_graph::factories;
use pns_graph::Graph;
use pns_order::radix::Shape;
use pns_product::embedding::torus_embedding;
use pns_simulator::{network_sort, ChargedEngine, CostModel};

/// Measure (slowdown, charged steps, bound) for one factor and dimension.
#[must_use]
pub fn measure(factor: &Graph, r: usize) -> (u32, u64, u64) {
    let emb = torus_embedding(factor, r.max(2));
    let n = factor.n();
    let shape = Shape::new(n, r);
    let mut keys: Vec<u64> = (0..shape.len()).rev().collect();
    let mut engine = ChargedEngine::new(CostModel::paper_universal(n));
    let out = network_sort(shape, &mut keys, &mut engine);
    assert!(pns_simulator::netsort::is_snake_sorted(shape, &keys));
    let rr = (r - 1) as u64;
    let bound = 18 * rr * rr * n as u64;
    (emb.slowdown(), out.steps, bound)
}

/// Regenerate the universal-bound table.
#[must_use]
pub fn run() -> Report {
    let mut report = Report::new(
        "e06_universal_bound",
        "Corollary: any connected factor sorts in ≤ 18(r-1)²N + o(r²N) steps \
         via torus emulation (slowdown ≤ 6)",
        &[
            "factor",
            "N",
            "r",
            "slowdown",
            "steps",
            "bound 18(r-1)²N",
            "within",
        ],
    );
    let factors: Vec<Graph> = vec![
        factories::cycle(8),
        factories::petersen(),
        factories::complete_binary_tree(3),
        factories::star(6),
        factories::random_connected(11, 4, 7),
        factories::random_connected(13, 0, 3), // a random tree
    ];
    for factor in &factors {
        for r in [2usize, 3] {
            let (slowdown, steps, bound) = measure(factor, r);
            let ok = slowdown <= 6 && steps <= bound;
            report.check(ok);
            report.row(&[
                factor.name().to_owned(),
                factor.n().to_string(),
                r.to_string(),
                slowdown.to_string(),
                steps.to_string(),
                bound.to_string(),
                ok.to_string(),
            ]);
        }
    }
    report.note(
        "Slowdown is 1 for Hamiltonian-cycle factors (the torus embeds \
         perfectly) and at most 6 otherwise (Sekanina dilation-3 ordering, \
         congestion 2). Charged steps use S2 = 6·2.5N (emulated Kunde sort) \
         and R = 6·N/2 (emulated cycle routing).",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn corollary_bound_holds() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }
}
