//! E24 (extension) — the pluggable `S2` sorter suite end-to-end.
//! Deterministic claims:
//!
//! 1. Every candidate sorter's compiled program is bit-identical to the
//!    serial interpreter's oracle through **both** accelerated tiers:
//!    the flat kernel batch and the vertical column batch land every
//!    lane exactly where `BspMachine::run` with the OET-snake program
//!    puts it (all sorters sort, so all outputs agree lane for lane).
//! 2. Theorem 1 linearity holds per sorter: against the OET-snake row
//!    on the same fixture, measured total steps move by exactly
//!    `(r-1)²·ΔS2` — the a02 reconciliation, now across the whole
//!    suite.
//! 3. The auto-selector's pick minimizes executed `s2_steps` on every
//!    fixture (ties broken by depth, then size).
//! 4. On the dense `K(r,N)` fixtures at least one *new* sorter
//!    (multiway n-sorter or periodic merge) strictly improves both
//!    program depth and compiled rounds over the OET snake.
//!
//! Wall-clock columns (kernel-tier and vertical-tier batch sorts per
//! sorter, plus the sequential LSB-radix baseline on the same lanes)
//! are informational — they depend on the host — and are what the
//! nightly `BENCH_e24_s2.json` artifact tracks over time. The ISSUE-10
//! acceptance bar — a measured kernel- or vertical-tier wall-time win
//! for a new sorter over the OET snake — is asserted by the binary,
//! where timings are release-mode.

use crate::Report;
use pns_baselines::LsbRadixSorter;
use pns_graph::factories;
use pns_simulator::bsp::BspMachine;
use pns_simulator::{
    compile, score_sorters, select_sorter, Machine, ScratchPool, VerticalPool, WORD_LANES,
};
use serde::Serialize;
use std::time::Instant;

/// Lanes per batched timing pass: exactly one vertical word block, so
/// the column path runs at full word-level occupancy.
const BATCH: usize = WORD_LANES;
/// Timed repetitions per tier (keeps debug-mode tests quick while
/// giving release-mode timings something to average over).
const REPS: usize = 24;

fn lcg_keys(len: u64, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..len)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(i | 1);
            state >> 33
        })
        .collect()
}

/// One measured `(fixture, sorter)` configuration, as serialized into
/// `BENCH_e24_s2.json`.
#[derive(Debug, Clone, Serialize)]
pub struct E24Row {
    /// Row identity for the perf-regression sentinel
    /// (`factor/r/sorter` — `factor` and `r` alone are not unique here
    /// because every fixture carries one row per candidate sorter).
    pub id: String,
    /// Factor graph name.
    pub factor: String,
    /// Product dimensions.
    pub r: usize,
    /// `N^r`.
    pub nodes: u64,
    /// Sorter display name ([`pns_simulator::Pg2Sorter::name`]).
    pub sorter: String,
    /// True on the row the auto-selector picks for this fixture.
    pub auto_pick: bool,
    /// `PG_2` program depth (rounds) at this factor size.
    pub depth: usize,
    /// `PG_2` program size (comparators).
    pub size: usize,
    /// Routing-aware executed `S2` steps on this factor — the quantity
    /// Theorem 1 multiplies by `(r-1)²`.
    pub s2_steps: u64,
    /// Measured total steps of a full executed sort.
    pub total_steps: u64,
    /// Rounds in the compiled `PG_r` program.
    pub rounds: usize,
    /// Wall-time for `REPS` kernel-tier batch sorts of 64 lanes, ms.
    pub kernel_ms: f64,
    /// Wall-time for `REPS` vertical-tier column-batch sorts of the
    /// same 64 lanes, ms.
    pub vertical_ms: f64,
    /// Wall-time for `REPS` sequential LSB-radix sorts of the same 64
    /// lanes (the no-network sequence baseline, identical per fixture).
    pub radix_ms: f64,
    /// Strict improvement over the fixture's OET-snake row: smaller
    /// program depth *and* fewer compiled rounds.
    pub beats_oet_rounds: bool,
    /// Claims 1–3 for this row (claim 4 is checked across rows).
    pub ok: bool,
}

/// Measure every `(fixture, sorter)` configuration.
#[must_use]
pub fn collect() -> Vec<E24Row> {
    let fixtures: Vec<(pns_graph::Graph, usize)> = vec![
        (Machine::prepare_factor(&factories::complete(4)), 2),
        (Machine::prepare_factor(&factories::complete(4)), 3),
        (Machine::prepare_factor(&factories::complete(8)), 2),
        (Machine::prepare_factor(&factories::path(8)), 2),
        (Machine::prepare_factor(&factories::k2()), 6),
    ];
    let mut rows = Vec::new();
    let mut radix = LsbRadixSorter::new();
    for (factor, r) in fixtures {
        let bsp = BspMachine::new(&factor, r);
        let len = bsp.shape().len();
        let batch: Vec<Vec<u64>> = (0..BATCH as u64)
            .map(|s| lcg_keys(len, s * 2654435761 + 0xE24))
            .collect();

        // The serial-interpreter oracle: `BspMachine::run` with the
        // OET-snake program on every lane. Claim 1 pins every sorter's
        // kernel and vertical outputs to these exact vectors.
        let scores = score_sorters(&factor);
        let oet = scores
            .iter()
            .find(|s| s.name == "oet-snake")
            .expect("oet-snake supports every n >= 2")
            .clone();
        let auto_id = select_sorter(&factor).id();
        let min_s2 = scores.iter().map(|s| s.s2_steps).min().unwrap();
        let oet_program = compile(&factor, r, &pns_simulator::OetSnakeSorter);
        let oracle: Vec<Vec<u64>> = batch
            .iter()
            .map(|lane| {
                let mut keys = lane.clone();
                bsp.run(&mut keys, &oet_program);
                keys
            })
            .collect();
        let oet_rounds = oet_program.rounds();

        // Theorem 1 baseline for claim 2: the OET row's (S2, total).
        let (oet_s2, oet_total) = executed_steps(&factor, r, "oet-snake");

        // The radix column prices the same batch through the sequence
        // baseline — one number per fixture, repeated on every row so
        // each JSON record is self-contained.
        let mut work = batch.clone();
        let t = Instant::now();
        for _ in 0..REPS {
            for (w, b) in work.iter_mut().zip(&batch) {
                w.clear();
                w.extend_from_slice(b);
                radix.sort_u64(w);
            }
        }
        let radix_ms = t.elapsed().as_secs_f64() * 1e3;

        for score in &scores {
            let sorter = pns_simulator::candidates()
                .into_iter()
                .find(|c| c.id() == score.id)
                .expect("scores come from the candidate list");
            let program = compile(&factor, r, sorter);
            let kernel = bsp.lower(&program).expect("compiled programs validate");
            let vertical = bsp
                .lower_vertical(&program)
                .expect("compiled programs validate");

            // Claim 1: bit-identical to the oracle through both tiers.
            let mut pool = ScratchPool::new();
            let mut kb = batch.clone();
            bsp.run_kernel_batch(&mut kb, &kernel, &mut pool);
            let mut vpool = VerticalPool::new();
            let mut vb = batch.clone();
            bsp.run_vertical_batch(&mut vb, &vertical, &mut vpool);
            let identical = kb == oracle && vb == oracle;

            // Claim 2: totals move by exactly (r-1)²·ΔS2 vs the OET row.
            let (s2, total) = executed_steps(&factor, r, score.name);
            let rr = (r - 1) as i64;
            let predicted_delta = rr * rr * (oet_s2 as i64 - s2 as i64);
            let measured_delta = oet_total as i64 - total as i64;
            let linear = predicted_delta == measured_delta && s2 == score.s2_steps;

            // Claim 3: the auto pick is a routing-aware minimum.
            let auto_pick = score.id == auto_id;
            let auto_ok = !auto_pick || score.s2_steps == min_s2;

            // Timed passes: the kernel batch and the vertical column
            // batch over the same 64 lanes. Inputs are restored with
            // `clone_from_slice` so the loops allocate nothing.
            let t0 = Instant::now();
            for _ in 0..REPS {
                for (w, b) in work.iter_mut().zip(&batch) {
                    w.clone_from_slice(b);
                }
                bsp.run_kernel_batch(&mut work, &kernel, &mut pool);
            }
            let kernel_ms = t0.elapsed().as_secs_f64() * 1e3;

            let t1 = Instant::now();
            for _ in 0..REPS {
                for (w, b) in work.iter_mut().zip(&batch) {
                    w.clone_from_slice(b);
                }
                bsp.run_vertical_batch(&mut work, &vertical, &mut vpool);
            }
            let vertical_ms = t1.elapsed().as_secs_f64() * 1e3;

            rows.push(E24Row {
                id: format!("{}/r{r}/{}", factor.name(), score.name),
                factor: factor.name().to_owned(),
                r,
                nodes: len,
                sorter: score.name.to_owned(),
                auto_pick,
                depth: score.depth,
                size: score.size,
                s2_steps: score.s2_steps,
                total_steps: total,
                rounds: program.rounds(),
                kernel_ms,
                vertical_ms,
                radix_ms,
                beats_oet_rounds: score.depth < oet.depth && program.rounds() < oet_rounds,
                ok: identical && linear && auto_ok,
            });
        }
    }
    rows
}

/// Run a full executed-machine sort with the named candidate and
/// return `(s2_steps, total_steps)` — the a02 measurement, reused for
/// the claim-2 reconciliation.
fn executed_steps(factor: &pns_graph::Graph, r: usize, name: &str) -> (u64, u64) {
    let sorter = pns_simulator::candidates()
        .into_iter()
        .find(|c| c.name() == name)
        .expect("named candidate exists");
    let mut m = Machine::executed(factor, r, sorter);
    let s2 = m.s2_steps();
    let len = (factor.n() as u64).pow(r as u32);
    let keys: Vec<u64> = (0..len).rev().collect();
    let rep = m.sort(keys).expect("key count");
    assert!(rep.is_snake_sorted(), "{name} must sort");
    (s2, rep.steps())
}

/// Build the experiment report from measured rows (separated from
/// [`collect`] so the binary can serialize the same rows to JSON).
#[must_use]
pub fn report_from_rows(rows: &[E24Row]) -> Report {
    let mut report = Report::new(
        "e24_s2_sorters",
        "Extension: pluggable S2 sorter suite — every candidate \
         bit-identical through kernel and vertical tiers, totals move \
         by exactly (r-1)²·ΔS2, the auto-selector picks the \
         routing-aware minimum, and a new sorter strictly beats the \
         OET snake on dense fixtures",
        &[
            "factor",
            "r",
            "sorter",
            "auto",
            "depth",
            "size",
            "S2 steps",
            "total",
            "rounds",
            "kernel ms",
            "vertical ms",
            "radix ms",
            "match",
        ],
    );
    for row in rows {
        report.check(row.ok);
        report.row(&[
            row.factor.clone(),
            row.r.to_string(),
            row.sorter.clone(),
            if row.auto_pick {
                "*".to_owned()
            } else {
                String::new()
            },
            row.depth.to_string(),
            row.size.to_string(),
            row.s2_steps.to_string(),
            row.total_steps.to_string(),
            row.rounds.to_string(),
            format!("{:.2}", row.kernel_ms),
            format!("{:.2}", row.vertical_ms),
            format!("{:.2}", row.radix_ms),
            row.ok.to_string(),
        ]);
    }
    // Claim 4: a new construction strictly improves depth *and*
    // compiled rounds over the OET snake on every dense K(r,N) fixture.
    let new_sorter = |s: &str| s == "multiway-nsorter" || s == "periodic-merge";
    let dense_improved = rows.iter().any(|r| {
        (r.factor == "K4" || r.factor == "K8")
            && new_sorter(&r.sorter)
            && r.beats_oet_rounds
            && r.ok
    });
    report.check(dense_improved);
    report.note(&format!(
        "{REPS} reps per timed pass, batches of {BATCH} lanes. \
         `*` marks the auto-selector's per-fixture pick (minimum \
         routing-aware S2 steps). Wall-clock columns are \
         host-dependent (everything in `match` is deterministic): \
         kernel/vertical are the two accelerated tiers over the same \
         64-lane batch, radix is the sequential LSB-radix sequence \
         baseline on identical lanes. Totals reconcile against the \
         OET row as (r-1)²·ΔS2, exactly."
    ));
    report
}

/// Regenerate the S2 sorter-suite table.
#[must_use]
pub fn run() -> Report {
    report_from_rows(&collect())
}

#[cfg(test)]
mod tests {
    #[test]
    fn s2_sorter_suite_table_matches() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }
}
