//! E19 (extension) — the flat structure-of-arrays kernel tier vs the
//! interpreting executor. Deterministic claims:
//!
//! 1. The lowered kernel produces configurations bit-identical to
//!    `run_parallel` (single vectors) and `run_batch` (batches) on every
//!    tested topology, raw and optimized.
//! 2. Lowering is shape-preserving: round count matches the source
//!    program, and every round classifies as compare or route (plus
//!    empties), with the class totals adding up.
//! 3. When an allocation probe is supplied (the `e19_kernel_speedup`
//!    binary installs a counting global allocator), warm `run_kernel`
//!    calls perform **zero** heap allocations.
//!
//! Wall-clock columns (interpreter vs kernel, single and batched) are
//! informational — they depend on the host — and are what the nightly
//! `BENCH_e19_kernel.json` artifact tracks over time.

use crate::Report;
use pns_graph::factories;
use pns_simulator::bsp::BspMachine;
use pns_simulator::{
    compile, ExecScratch, Hypercube2Sorter, Machine, OetSnakeSorter, Pg2Sorter, ScratchPool,
    ShearSorter,
};
use serde::Serialize;
use std::time::Instant;

/// Vectors per batched timing pass.
const BATCH: usize = 16;
/// Timed repetitions per executor (keeps debug-mode tests quick while
/// giving release-mode timings something to average over).
const REPS: usize = 64;

fn lcg_keys(len: u64, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..len)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(i | 1);
            state >> 33
        })
        .collect()
}

/// One measured configuration, as serialized into
/// `BENCH_e19_kernel.json`.
#[derive(Debug, Clone, Serialize)]
pub struct E19Row {
    /// Factor graph name.
    pub factor: String,
    /// Product dimensions.
    pub r: usize,
    /// `N^r`.
    pub nodes: u64,
    /// Rounds in the lowered kernel (= the compiled program's rounds).
    pub rounds: usize,
    /// Rounds lowered to pure compare-exchange pair lists.
    pub compare_rounds: usize,
    /// Rounds lowered to packed route micro-ops.
    pub route_rounds: usize,
    /// Wall-time for `REPS` single-vector `run_parallel` calls, ms.
    pub interp_ms: f64,
    /// Wall-time for `REPS` warm single-vector `run_kernel` calls, ms.
    pub kernel_ms: f64,
    /// `interp_ms / kernel_ms`.
    pub speedup: f64,
    /// Wall-time for `REPS` 16-vector `run_batch` calls, ms.
    pub batch_interp_ms: f64,
    /// Wall-time for `REPS` 16-vector `run_kernel_batch` calls, ms.
    pub batch_kernel_ms: f64,
    /// `batch_interp_ms / batch_kernel_ms`.
    pub batch_speedup: f64,
    /// Heap allocations across the `REPS` timed `run_parallel` calls
    /// (probe builds only).
    pub interp_allocs: Option<u64>,
    /// Heap allocations across the `REPS` timed warm `run_kernel`
    /// calls (probe builds only) — claim 3 requires exactly zero.
    pub kernel_allocs: Option<u64>,
    /// Claims 1–3 for this configuration.
    pub ok: bool,
}

/// Measure every configuration. `probe`, when supplied, reads a
/// process-global allocation counter (the binary installs one as
/// `#[global_allocator]`); library callers pass `None` and the
/// allocation columns stay empty.
#[must_use]
pub fn collect(probe: Option<fn() -> u64>) -> Vec<E19Row> {
    let cases: Vec<(pns_graph::Graph, usize, &dyn Pg2Sorter)> = vec![
        // The headline ISSUE-5 workload: the 3-ary 3-cube.
        (factories::path(3), 3, &ShearSorter),
        (factories::k2(), 8, &Hypercube2Sorter),
        (
            Machine::prepare_factor(&factories::petersen()),
            2,
            &ShearSorter,
        ),
        (factories::star(4), 2, &OetSnakeSorter),
    ];
    let allocs = |probe: Option<fn() -> u64>| probe.map_or(0, |p| p());
    let mut rows = Vec::new();
    for (factor, r, sorter) in cases {
        let program = compile(&factor, r, sorter);
        let optimized = program.optimized();
        let bsp = BspMachine::new(&factor, r);
        let kernel = bsp.lower(&program).expect("compiled programs validate");
        let kernel_opt = bsp.lower(&optimized).expect("optimized programs validate");
        let len = kernel.shape().len();
        let input = lcg_keys(len, 0xE19);

        // Claim 1: bit-identical on every path, raw and optimized.
        let mut reference = input.clone();
        bsp.run(&mut reference, &program);
        let mut scratch = ExecScratch::new();
        let mut identical = true;
        for (prog, kern) in [(&program, &kernel), (&optimized, &kernel_opt)] {
            let mut a = input.clone();
            bsp.run_parallel(&mut a, prog);
            let mut b = input.clone();
            bsp.run_kernel(&mut b, kern, &mut scratch);
            identical &= a == reference && b == reference;
        }
        let batch: Vec<Vec<u64>> = (0..BATCH as u64)
            .map(|s| lcg_keys(len, s * 2654435761 + 3))
            .collect();
        {
            let mut bi = batch.clone();
            bsp.run_batch(&mut bi, &program);
            let mut bk = batch.clone();
            let mut pool = ScratchPool::new();
            bsp.run_kernel_batch(&mut bk, &kernel, &mut pool);
            identical &= bi == bk;
        }

        // Claim 2: lowering preserves the round structure.
        let classes_ok = kernel.rounds() == program.rounds()
            && kernel.compare_rounds() + kernel.route_rounds() <= kernel.rounds();

        // Timed passes. The input is restored with `clone_from_slice`
        // so the loop itself allocates nothing and the allocation
        // deltas below are attributable to the executors alone.
        let mut keys = input.clone();
        let a0 = allocs(probe);
        let t0 = Instant::now();
        for _ in 0..REPS {
            keys.clone_from_slice(&input);
            bsp.run_parallel(&mut keys, &program);
        }
        let interp_ms = t0.elapsed().as_secs_f64() * 1e3;
        let interp_allocs = probe.map(|p| p() - a0);

        keys.clone_from_slice(&input);
        bsp.run_kernel(&mut keys, &kernel, &mut scratch); // warm-up
        let a1 = allocs(probe);
        let t1 = Instant::now();
        for _ in 0..REPS {
            keys.clone_from_slice(&input);
            bsp.run_kernel(&mut keys, &kernel, &mut scratch);
        }
        let kernel_ms = t1.elapsed().as_secs_f64() * 1e3;
        let kernel_allocs = probe.map(|p| p() - a1);

        // Claim 3: zero allocations per warm kernel run (probe builds).
        let alloc_ok = kernel_allocs.is_none_or(|a| a == 0);

        let mut work = batch.clone();
        let t2 = Instant::now();
        for _ in 0..REPS {
            for (w, b) in work.iter_mut().zip(&batch) {
                w.clone_from_slice(b);
            }
            bsp.run_batch(&mut work, &program);
        }
        let batch_interp_ms = t2.elapsed().as_secs_f64() * 1e3;

        let mut pool = ScratchPool::new();
        let t3 = Instant::now();
        for _ in 0..REPS {
            for (w, b) in work.iter_mut().zip(&batch) {
                w.clone_from_slice(b);
            }
            bsp.run_kernel_batch(&mut work, &kernel, &mut pool);
        }
        let batch_kernel_ms = t3.elapsed().as_secs_f64() * 1e3;

        rows.push(E19Row {
            factor: factor.name().to_owned(),
            r,
            nodes: len,
            rounds: kernel.rounds(),
            compare_rounds: kernel.compare_rounds(),
            route_rounds: kernel.route_rounds(),
            interp_ms,
            kernel_ms,
            speedup: interp_ms / kernel_ms.max(f64::EPSILON),
            batch_interp_ms,
            batch_kernel_ms,
            batch_speedup: batch_interp_ms / batch_kernel_ms.max(f64::EPSILON),
            interp_allocs,
            kernel_allocs,
            ok: identical && classes_ok && alloc_ok,
        });
    }
    rows
}

/// Build the experiment report from measured rows (separated from
/// [`collect`] so the binary can serialize the same rows to JSON).
#[must_use]
pub fn report_from_rows(rows: &[E19Row]) -> Report {
    let mut report = Report::new(
        "e19_kernel_speedup",
        "Extension: flat SoA kernel tier — lowered kernels bit-identical \
         to the interpreting executor, shape-preserving lowering, zero \
         heap allocations per warm run_kernel call",
        &[
            "factor",
            "r",
            "nodes",
            "rounds (cmp+route)",
            "interp ms",
            "kernel ms",
            "speedup",
            "batch speedup",
            "allocs (interp/kernel)",
            "match",
        ],
    );
    for row in rows {
        report.check(row.ok);
        let alloc_col = match (row.interp_allocs, row.kernel_allocs) {
            (Some(i), Some(k)) => format!("{i}/{k}"),
            _ => "-".to_owned(),
        };
        report.row(&[
            row.factor.clone(),
            row.r.to_string(),
            row.nodes.to_string(),
            format!(
                "{} ({}+{})",
                row.rounds, row.compare_rounds, row.route_rounds
            ),
            format!("{:.2}", row.interp_ms),
            format!("{:.2}", row.kernel_ms),
            format!("{:.2}x", row.speedup),
            format!("{:.2}x", row.batch_speedup),
            alloc_col,
            row.ok.to_string(),
        ]);
    }
    report.note(&format!(
        "{REPS} reps per timed pass, batches of {BATCH}. Wall-clock \
         columns are host-dependent (everything in `match` is \
         deterministic): `speedup` is single-vector run_parallel vs warm \
         run_kernel, `batch speedup` is run_batch vs run_kernel_batch. \
         The allocation column (binary runs only) counts heap \
         allocations across all {REPS} timed calls; the kernel side \
         must be exactly 0 after its one warm-up run."
    ));
    report
}

/// Regenerate the kernel-speedup table (no allocation probe; the
/// `e19_kernel_speedup` binary adds one).
#[must_use]
pub fn run() -> Report {
    report_from_rows(&collect(None))
}

#[cfg(test)]
mod tests {
    #[test]
    fn kernel_speedup_table_matches() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }
}
