//! E08 — §5.2 Mesh-connected trees: products of complete binary trees
//! sort `N^r` keys in `O(r²N)` steps (the Corollary's universal bound
//! applies — the factor is not Hamiltonian), optimal for fixed `r`
//! against the `O(r²N)`-bisection lower bound.

use crate::Report;
use pns_graph::factories;
use pns_order::radix::Shape;
use pns_simulator::{network_sort, ChargedEngine, CostModel, Machine, OetSnakeSorter};

/// Regenerate the MCT table.
#[must_use]
pub fn run() -> Report {
    let mut report = Report::new(
        "e08_mct",
        "§5.2 Mesh-connected trees: O(r²N) via torus emulation; executed \
         run on the Sekanina-relabeled tree factor",
        &[
            "levels",
            "N",
            "r",
            "keys",
            "charged steps",
            "bound 18(r-1)²N",
            "within",
        ],
    );
    for levels in [2usize, 3, 4] {
        let factor = factories::complete_binary_tree(levels);
        let n = factor.n();
        for r in [2usize, 3] {
            if (n as u64).pow(r as u32) > 1 << 16 {
                continue;
            }
            let shape = Shape::new(n, r);
            let mut keys: Vec<u64> = (0..shape.len()).rev().collect();
            let mut engine = ChargedEngine::new(CostModel::paper_universal(n));
            let out = network_sort(shape, &mut keys, &mut engine);
            assert!(pns_simulator::netsort::is_snake_sorted(shape, &keys));
            let rr = (r - 1) as u64;
            let bound = 18 * rr * rr * n as u64;
            let ok = out.steps <= bound;
            report.check(ok);
            report.row(&[
                levels.to_string(),
                n.to_string(),
                r.to_string(),
                (n as u64).pow(r as u32).to_string(),
                out.steps.to_string(),
                bound.to_string(),
                ok.to_string(),
            ]);
        }
    }

    // Executed end-to-end on the relabeled tree factor: comparator labels
    // are within distance 3, non-adjacent exchanges route inside tree
    // copies — the Section 4 non-Hamiltonian case, actually executed.
    let factor = Machine::prepare_factor(&factories::complete_binary_tree(3));
    let mut m = Machine::executed(&factor, 2, &OetSnakeSorter);
    let keys: Vec<u64> = (0..49u64).rev().collect();
    let rep = m.sort(keys).expect("49 keys");
    let ok = rep.is_snake_sorted();
    report.check(ok);
    report.note(&format!(
        "Executed MCT (7-node tree factor, r=2, 49 keys, OET-snake S2): \
         sorted = {ok}, measured steps = {} (routed exchanges cost more \
         than one step — the constant-factor price of a non-Hamiltonian \
         factor the paper describes in Section 4).",
        rep.steps()
    ));
    report.note(
        "The paper notes S2(N) cannot beat O(N) on the 2-D MCT (bisection \
         width O(N)), so O(r²N) is the right regime; the bound column is \
         the Corollary's universal constant.",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn mct_within_universal_bound() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }
}
