//! E21 (extension) — the timing-span layer profiles the whole executor
//! stack, and the profile reconciles with the ground truth. One
//! workload (the 2-ary 9-cube, 512 nodes) runs through every execution
//! tier with a recording logger attached; for each tier the aggregated
//! [`Profile`] must tell the same story as the executor itself:
//!
//! 1. **Balance** — every span opened is closed (`open_spans() == 0`,
//!    `spans_opened == spans_closed`), and for these same-thread trees
//!    the per-key self times sum exactly to the root time.
//! 2. **Coverage** — the root span time is ≥95% of the wall-clock
//!    measured around the timed executor calls, so the profile
//!    accounts for where a sort actually spends its time. (The span
//!    opens after argument checks and closes at return, so this is
//!    structural, not statistical.)
//! 3. **Reconciliation** — span counts and event counts equal what the
//!    program's shape predicts *exactly*: one sort/batch span per
//!    call; one round span per round at or above
//!    [`ROUND_OBS_MIN_OPS`] ops (per call); round events matching the
//!    tier's grain; and on `Machine` rows the summed `S2Unit` /
//!    `RouteUnit` events equal [`pns_core::Counters`] times the number
//!    of vectors sorted.
//!
//! The wall/span millisecond columns are host-dependent and are what
//! the nightly `BENCH_e21_profile.json` artifact tracks over time (the
//! `bench_compare` sentinel diffs them against `BENCH_baseline/`);
//! everything in `ok` is deterministic.

use crate::Report;
use pns_graph::factories;
use pns_obs::{
    EventLogger, MemorySink, Profile, SpanClass, Stage, Tier, ROUND_OBS_MIN_OPS, SORT_OBS_MIN_OPS,
};
use pns_simulator::bsp::BspMachine;
use pns_simulator::{
    compile, BitScratch, ExecScratch, Hypercube2Sorter, Machine, ProgramCache, WORD_LANES,
};
use serde::Serialize;
use std::time::Instant;

/// Product dimensions of the workload: `K2^9`, 512 nodes — large
/// enough that every kernel/vertical round clears the
/// [`ROUND_OBS_MIN_OPS`] gate or misses it predictably.
const R: usize = 9;
/// Wall-clock coverage the span tree must reach.
const MIN_COVERAGE: f64 = 0.95;

fn lcg_keys(len: u64, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..len)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(i | 1);
            state >> 33
        })
        .collect()
}

fn random_words(len: u64, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state ^ (state >> 29)
        })
        .collect()
}

/// One profiled tier, as serialized into `BENCH_e21_profile.json`.
#[derive(Debug, Clone, Serialize)]
pub struct E21Row {
    /// Execution tier (`serial`, `parallel`, `kernel`, `vertical_bits`,
    /// `machine_sort`, `machine_batch`) — the row identity.
    pub tier: String,
    /// Timed executor calls.
    pub runs: u64,
    /// `N^r`.
    pub nodes: u64,
    /// Rounds in the program this tier executed.
    pub rounds: u64,
    /// Rounds per call at or above the [`ROUND_OBS_MIN_OPS`] span gate.
    pub observed_rounds: u64,
    /// Events the tier emitted across all runs.
    pub events: u64,
    /// Spans closed across all runs.
    pub spans: u64,
    /// Wall-clock across the timed calls, ms.
    pub wall_ms: f64,
    /// Root span time aggregated by the profile, ms.
    pub span_ms: f64,
    /// `span_ms / wall_ms` — must be ≥ 0.95 (claim 2).
    pub coverage_ratio: f64,
    /// Claims 1–3 for this tier.
    pub ok: bool,
}

/// The per-tier invariants shared by every row: balanced spans,
/// self-time accounting, wall-clock coverage.
fn structural_ok(profile: &Profile, wall_ns: u64) -> (f64, bool) {
    let coverage = profile.root_ns() as f64 / (wall_ns.max(1)) as f64;
    let ok = profile.open_spans() == 0
        && profile.summary().unmatched_spans() == 0
        && profile.total_self_ns() == profile.root_ns()
        && coverage >= MIN_COVERAGE;
    (coverage, ok)
}

/// Count of spans closed under `(tier, stage)` across all classes.
fn span_count(profile: &Profile, tier: Tier, stage: Stage) -> u64 {
    profile
        .stats()
        .filter(|(k, _)| k.tier == tier.code() && k.stage == stage.code())
        .map(|(_, s)| s.count)
        .sum()
}

/// Measure every tier on the shared workload.
///
/// # Panics
///
/// Panics if the compiled program fails validation (it cannot: it
/// comes from [`compile`]).
#[must_use]
#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
pub fn collect() -> Vec<E21Row> {
    let factor = factories::k2();
    let sorter = Hypercube2Sorter;
    let program = compile(&factor, R, &sorter);
    let base_bsp = BspMachine::new(&factor, R);
    let len = base_bsp.shape().len();
    let kernel = base_bsp
        .lower(&program)
        .expect("compiled programs validate");
    let base_keys = lcg_keys(len, 0xE21);

    // Per-call round-span expectations, straight from the op counts
    // the gates read.
    let program_observed = program
        .round_ops()
        .iter()
        .filter(|r| r.len() >= ROUND_OBS_MIN_OPS)
        .count() as u64;
    let kernel_observed = (0..kernel.rounds())
        .filter(|&ri| kernel.round_len(ri) >= ROUND_OBS_MIN_OPS)
        .count() as u64;

    // Each tier records into its own memory sink so reconciliation is
    // exact per tier; 1<<20 events is far above any row's emission.
    let recorder = || {
        let (sink, reader) = MemorySink::with_capacity(1 << 20);
        (EventLogger::new(Box::new(sink)), reader)
    };
    let mut rows = Vec::new();

    // -- serial interpreter ------------------------------------------
    {
        let runs = 2u64;
        let (logger, reader) = recorder();
        let mut bsp = BspMachine::new(&factor, R);
        bsp.attach_logger(logger.clone());
        let mut keys = base_keys.clone();
        let mut wall_ns = 0u64;
        for _ in 0..runs {
            keys.copy_from_slice(&base_keys);
            let t = Instant::now();
            bsp.run(&mut keys, &program);
            wall_ns += t.elapsed().as_nanos() as u64;
        }
        logger.flush();
        let profile = Profile::from_events(&reader.events());
        let (coverage, structural) = structural_ok(&profile, wall_ns);
        // Serial round *events* are unconditional; round *spans* gate.
        let reconciled = profile.summary().rounds == program.rounds() as u64 * runs
            && span_count(&profile, Tier::Serial, Stage::Sort) == runs
            && span_count(&profile, Tier::Serial, Stage::Round) == program_observed * runs;
        rows.push(E21Row {
            tier: "serial".into(),
            runs,
            nodes: len,
            rounds: program.rounds() as u64,
            observed_rounds: program_observed,
            events: profile.summary().events,
            spans: profile.summary().spans_closed,
            wall_ms: wall_ns as f64 / 1e6,
            span_ms: profile.root_ns() as f64 / 1e6,
            coverage_ratio: coverage,
            ok: structural && reconciled,
        });
    }

    // -- validated parallel interpreter ------------------------------
    {
        let runs = 4u64;
        let (logger, reader) = recorder();
        let mut bsp = BspMachine::new(&factor, R);
        bsp.attach_logger(logger.clone());
        let mut keys = base_keys.clone();
        let mut wall_ns = 0u64;
        for _ in 0..runs {
            keys.copy_from_slice(&base_keys);
            let t = Instant::now();
            bsp.run_parallel(&mut keys, &program);
            wall_ns += t.elapsed().as_nanos() as u64;
        }
        logger.flush();
        let profile = Profile::from_events(&reader.events());
        let (coverage, structural) = structural_ok(&profile, wall_ns);
        let reconciled = profile.summary().rounds == program.rounds() as u64 * runs
            && span_count(&profile, Tier::Parallel, Stage::Sort) == runs
            && span_count(&profile, Tier::Parallel, Stage::Validate) == runs
            && span_count(&profile, Tier::Parallel, Stage::Round) == program_observed * runs;
        rows.push(E21Row {
            tier: "parallel".into(),
            runs,
            nodes: len,
            rounds: program.rounds() as u64,
            observed_rounds: program_observed,
            events: profile.summary().events,
            spans: profile.summary().spans_closed,
            wall_ms: wall_ns as f64 / 1e6,
            span_ms: profile.root_ns() as f64 / 1e6,
            coverage_ratio: coverage,
            ok: structural && reconciled,
        });
    }

    // -- flat SoA kernel ---------------------------------------------
    {
        let runs = 8u64;
        let (logger, reader) = recorder();
        let mut bsp = BspMachine::new(&factor, R);
        bsp.attach_logger(logger.clone());
        let mut scratch = ExecScratch::new();
        let mut keys = base_keys.clone();
        let mut wall_ns = 0u64;
        for _ in 0..runs {
            keys.copy_from_slice(&base_keys);
            let t = Instant::now();
            bsp.run_kernel(&mut keys, &kernel, &mut scratch);
            wall_ns += t.elapsed().as_nanos() as u64;
        }
        logger.flush();
        let profile = Profile::from_events(&reader.events());
        let (coverage, structural) = structural_ok(&profile, wall_ns);
        // Kernel round events *and* spans share the op-count gate, and
        // every observed round span carries a real class.
        let classed: u64 = profile
            .stats()
            .filter(|(k, _)| {
                k.tier == Tier::Kernel.code()
                    && k.stage == Stage::Round.code()
                    && k.class != SpanClass::None.code()
            })
            .map(|(_, s)| s.count)
            .sum();
        let reconciled = profile.summary().rounds == kernel_observed * runs
            && span_count(&profile, Tier::Kernel, Stage::Sort) == runs
            && span_count(&profile, Tier::Kernel, Stage::Round) == kernel_observed * runs
            && classed == kernel_observed * runs;
        rows.push(E21Row {
            tier: "kernel".into(),
            runs,
            nodes: len,
            rounds: kernel.rounds() as u64,
            observed_rounds: kernel_observed,
            events: profile.summary().events,
            spans: profile.summary().spans_closed,
            wall_ms: wall_ns as f64 / 1e6,
            span_ms: profile.root_ns() as f64 / 1e6,
            coverage_ratio: coverage,
            ok: structural && reconciled,
        });
    }

    // -- bit-sliced vertical -----------------------------------------
    {
        let runs = 32u64;
        let (logger, reader) = recorder();
        let mut bsp = BspMachine::new(&factor, R);
        bsp.attach_logger(logger.clone());
        // Lowered on the logger-free machine so the profile holds only
        // the timed runs (the memory reader snapshots, not drains).
        let vertical = base_bsp
            .lower_vertical(&program)
            .expect("compiled programs validate");
        let words = random_words(len, 0xE21);
        let mut work = words.clone();
        let mut scratch = BitScratch::new();
        let mut wall_ns = 0u64;
        for _ in 0..runs {
            work.copy_from_slice(&words);
            let t = Instant::now();
            bsp.run_vertical_bits(&mut work, &vertical, &mut scratch);
            wall_ns += t.elapsed().as_nanos() as u64;
        }
        logger.flush();
        let profile = Profile::from_events(&reader.events());
        let (coverage, structural) = structural_ok(&profile, wall_ns);
        let reconciled = profile.summary().rounds == kernel_observed * runs
            && span_count(&profile, Tier::Vertical, Stage::Sort) == runs
            && span_count(&profile, Tier::Vertical, Stage::Round) == kernel_observed * runs;
        rows.push(E21Row {
            tier: "vertical_bits".into(),
            runs,
            nodes: len,
            rounds: vertical.rounds() as u64,
            observed_rounds: kernel_observed,
            events: profile.summary().events,
            spans: profile.summary().spans_closed,
            wall_ms: wall_ns as f64 / 1e6,
            span_ms: profile.root_ns() as f64 / 1e6,
            coverage_ratio: coverage,
            ok: structural && reconciled,
        });
    }

    // -- Machine::sort (cache + kernel tier + unit events) -----------
    {
        let runs = 4u64;
        let (logger, reader) = recorder();
        let mut cache = ProgramCache::new();
        cache.attach_logger(logger.clone());
        let mut machine = Machine::compiled(&factor, R, &sorter, &cache);
        machine.attach_logger(logger.clone());
        let mut wall_ns = 0u64;
        let mut counters = pns_core::Counters::new();
        for run in 0..runs {
            let keys = lcg_keys(len, run * 77 + 5);
            let t = Instant::now();
            let report = machine.sort(keys).expect("one key per node");
            wall_ns += t.elapsed().as_nanos() as u64;
            counters = counters.then(report.outcome.counters);
        }
        logger.flush();
        let all = reader.events();
        // The cache's compile/lower spans ran outside the timed calls;
        // profile only the sort stream, but keep the full stream's
        // summary for the cache checks below.
        let full = Profile::from_events(&all);
        // A cache span closes before anything else opens, so dropping
        // each Cache enter plus its immediately-following exits leaves
        // a well-formed sort-only stream.
        let mut depth = 0u64;
        let sorts: Vec<_> = all
            .iter()
            .filter(|e| match e.event {
                pns_obs::Event::SpanEnter { tier, .. } if tier == Tier::Cache.code() => {
                    depth += 1;
                    false
                }
                pns_obs::Event::SpanExit { .. } if depth > 0 => {
                    depth -= 1;
                    false
                }
                _ => true,
            })
            .copied()
            .collect();
        let profile = Profile::from_events(&sorts);
        let (coverage, structural) = structural_ok(&profile, wall_ns);
        let reconciled = profile.summary().s2_units == counters.s2_units
            && profile.summary().route_units == counters.route_units
            && span_count(&profile, Tier::Kernel, Stage::Sort) == runs
            && full.summary().cache_misses == 1
            && span_count(&full, Tier::Cache, Stage::Compile) == 1
            && span_count(&full, Tier::Cache, Stage::LowerKernel) == 1
            && span_count(&full, Tier::Cache, Stage::LowerVertical) == 1;
        rows.push(E21Row {
            tier: "machine_sort".into(),
            runs,
            nodes: len,
            rounds: kernel.rounds() as u64,
            observed_rounds: kernel_observed,
            events: full.summary().events,
            spans: full.summary().spans_closed,
            wall_ms: wall_ns as f64 / 1e6,
            span_ms: profile.root_ns() as f64 / 1e6,
            coverage_ratio: coverage,
            ok: structural && reconciled,
        });
    }

    // -- Machine::sort_batch on the vertical tier --------------------
    {
        let lanes = WORD_LANES as u64;
        let (logger, reader) = recorder();
        let cache = ProgramCache::new();
        let mut machine = Machine::compiled(&factor, R, &sorter, &cache);
        machine.attach_logger(logger.clone());
        let batch: Vec<Vec<u64>> = (0..lanes).map(|s| lcg_keys(len, s * 31 + 11)).collect();
        let t = Instant::now();
        let reports = machine.sort_batch(batch);
        let wall_ns = t.elapsed().as_nanos() as u64;
        let sorted = reports.iter().all(|r| r.is_ok());
        logger.flush();
        let profile = Profile::from_events(&reader.events());
        let (coverage, structural) = structural_ok(&profile, wall_ns);
        let per_sort = reports[0]
            .as_ref()
            .map(|r| r.outcome.counters)
            .unwrap_or_default();
        let reconciled = sorted
            && profile.summary().batches == 1
            && profile.summary().batch_vectors == lanes
            && profile.summary().s2_units == per_sort.s2_units * lanes
            && profile.summary().route_units == per_sort.route_units * lanes
            && span_count(&profile, Tier::Vertical, Stage::Batch) == 1;
        rows.push(E21Row {
            tier: "machine_batch".into(),
            runs: 1,
            nodes: len,
            rounds: kernel.rounds() as u64,
            observed_rounds: kernel_observed,
            events: profile.summary().events,
            spans: profile.summary().spans_closed,
            wall_ms: wall_ns as f64 / 1e6,
            span_ms: profile.root_ns() as f64 / 1e6,
            coverage_ratio: coverage,
            ok: structural && reconciled,
        });
    }

    rows
}

/// Build the experiment report from measured rows (separated from
/// [`collect`] so the binary can serialize the same rows to JSON).
#[must_use]
pub fn report_from_rows(rows: &[E21Row]) -> Report {
    let mut report = Report::new(
        "e21_profile",
        "Extension: hierarchical timing spans — every execution tier \
         profiled on one K2^9 workload; span trees balance, cover ≥95% \
         of sort wall-clock, and reconcile exactly with round/unit \
         counts",
        &[
            "tier", "runs", "nodes", "rounds", "observed", "events", "spans", "wall ms", "span ms",
            "coverage", "match",
        ],
    );
    for row in rows {
        report.check(row.ok);
        report.row(&[
            row.tier.clone(),
            row.runs.to_string(),
            row.nodes.to_string(),
            row.rounds.to_string(),
            row.observed_rounds.to_string(),
            row.events.to_string(),
            row.spans.to_string(),
            format!("{:.2}", row.wall_ms),
            format!("{:.2}", row.span_ms),
            format!("{:.3}", row.coverage_ratio),
            row.ok.to_string(),
        ]);
    }
    report.note(&format!(
        "One K2^{R} workload (512 nodes) through all six entry points, \
         each with a recording logger. `observed` counts the rounds per \
         call at or above the {ROUND_OBS_MIN_OPS}-op span gate \
         (ROUND_OBS_MIN_OPS); serial/parallel emit round *events* \
         unconditionally but gate round *spans*, while kernel/vertical \
         gate both, and their sort-grain spans additionally require \
         {SORT_OBS_MIN_OPS} total program ops (SORT_OBS_MIN_OPS) — the \
         K2^{R} program clears every gate. `coverage` is root span \
         time over wall time of the \
         timed calls — ≥{MIN_COVERAGE} required. Machine rows also \
         reconcile aggregated S2Unit/RouteUnit event sums against \
         pns_core::Counters exactly, and pin the cache's \
         compile/lower spans to exactly one miss. The ms columns feed \
         BENCH_e21_profile.json for the bench_compare sentinel."
    ));
    report
}

/// Regenerate the profiling table.
#[must_use]
pub fn run() -> Report {
    report_from_rows(&collect())
}

#[cfg(test)]
mod tests {
    #[test]
    fn profile_table_matches() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }
}
