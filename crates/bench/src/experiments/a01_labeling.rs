//! A01 (ablation) — Section 2's labeling claim: labeling the factor nodes
//! along a Hamiltonian path (or a dilation-3 linear array) "is not
//! required for the correctness of the proposed sorting algorithm", but
//! "would provide a speed improvement over an arbitrary labeling, by a
//! constant factor".
//!
//! We run the *executed* engine on the same factor twice — natural labels
//! vs linear-embedding labels — and measure the step difference. Both
//! runs must sort correctly; the relabeled run must be at least as fast.

use crate::Report;
use pns_graph::{factories, Graph};
use pns_simulator::{Machine, OetSnakeSorter, Pg2Sorter, ShearSorter};

fn executed_steps(factor: &Graph, r: usize, sorter: &dyn Pg2Sorter) -> (u64, bool) {
    let mut m = Machine::executed(factor, r, sorter);
    let len = (factor.n() as u64).pow(r as u32);
    let keys: Vec<u64> = (0..len).map(|x| (x * 2654435761) % 997).collect();
    let rep = m.sort(keys).expect("key count");
    (rep.steps(), rep.is_snake_sorted())
}

/// Regenerate the labeling ablation.
#[must_use]
pub fn run() -> Report {
    let mut report = Report::new(
        "a01_labeling",
        "Ablation (§2): arbitrary vs Hamiltonian/linear-array labeling — \
         correctness unaffected, speed differs by a constant factor",
        &[
            "factor",
            "r",
            "sorter",
            "steps (natural labels)",
            "steps (embedding labels)",
            "speedup",
            "both sorted",
        ],
    );
    // A scrambled Petersen: natural construction order is NOT a
    // Hamiltonian path (node 1's neighbor set is {0, 2, 6}; 5 is not
    // adjacent to 4), so label-consecutive compares must route.
    let cases: Vec<(Graph, usize, &dyn Pg2Sorter, &str)> = vec![
        (factories::petersen(), 2, &ShearSorter, "shearsort"),
        (
            factories::complete_binary_tree(3),
            2,
            &OetSnakeSorter,
            "oet-snake",
        ),
        (
            factories::random_connected(8, 3, 5),
            2,
            &OetSnakeSorter,
            "oet-snake",
        ),
    ];
    for (factor, r, sorter, sorter_name) in cases {
        let (natural, ok_a) = executed_steps(&factor, r, sorter);
        let relabeled = Machine::prepare_factor(&factor);
        let (embedded, ok_b) = executed_steps(&relabeled, r, sorter);
        let ok = ok_a && ok_b && embedded <= natural;
        report.check(ok);
        report.row(&[
            factor.name().to_owned(),
            r.to_string(),
            sorter_name.to_owned(),
            natural.to_string(),
            embedded.to_string(),
            format!("{:.2}x", natural as f64 / embedded as f64),
            (ok_a && ok_b).to_string(),
        ]);
    }
    report.note(
        "Both labelings sort correctly (the §2 claim); the embedding \
         labeling is consistently faster because label-consecutive \
         compare-exchanges become single edge steps instead of routed \
         exchanges — a constant factor, exactly as the paper states.",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn labeling_ablation_holds() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }
}
