//! E16 (extension) — parallel batched BSP execution with a compiled-
//! program cache. Three claims, all checked deterministically:
//!
//! 1. `run_parallel` and `run_batch` produce configurations
//!    bit-identical to serial [`BspMachine::run`] (and to `std` sort via
//!    snake order) on every tested topology.
//! 2. A second machine on the same `(factor, r, sorter)` is served from
//!    the [`ProgramCache`] without recompiling (hit counter goes up,
//!    miss counter does not).
//! 3. The op-stream optimizer only shrinks programs (rounds and ops),
//!    with its pass accounting consistent, and optimized programs sort
//!    identically.
//!
//! Wall-clock throughput columns (keys/ms, serial vs batched) are
//! informational — they depend on the host — and are recorded in
//! EXPERIMENTS.md for one reference machine.

use crate::report::obs_logger;
use crate::Report;
use pns_graph::factories;
use pns_simulator::bsp::BspMachine;
use pns_simulator::netsort::read_snake_order;
use pns_simulator::{fingerprint, Hypercube2Sorter};
use pns_simulator::{Machine, OetSnakeSorter, Pg2Sorter, ProgramCache, ShearSorter};
use std::time::Instant;

/// Vectors per batch. Large enough that batching can spread across
/// cores, small enough that the experiment stays fast in debug builds.
const BATCH: usize = 16;

fn lcg_keys(len: u64, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..len)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(i | 1);
            state >> 33
        })
        .collect()
}

/// Regenerate the throughput/cache table.
#[must_use]
pub fn run() -> Report {
    let mut report = Report::new(
        "e16_throughput",
        "Extension: batched BSP execution + program cache — batch output \
         bit-identical to serial runs, cache serves repeats without \
         recompiling, optimizer only shrinks programs",
        &[
            "factor",
            "r",
            "nodes",
            "rounds",
            "opt rounds",
            "ops",
            "opt ops",
            "cache(h/m)",
            "serial keys/ms",
            "batch keys/ms",
            "match",
        ],
    );
    let cases: Vec<(pns_graph::Graph, usize, &dyn Pg2Sorter)> = vec![
        (factories::k2(), 8, &Hypercube2Sorter),
        (factories::path(4), 3, &ShearSorter),
        (
            Machine::prepare_factor(&factories::petersen()),
            2,
            &ShearSorter,
        ),
        (factories::star(4), 2, &OetSnakeSorter),
    ];
    // PNS_OBS=jsonl[:path] | summary | off selects the tracing sink.
    let logger = obs_logger("e16_throughput");
    let mut cache_lines = Vec::new();
    for (factor, r, sorter) in cases {
        let mut cache = ProgramCache::new();
        cache.attach_logger(logger.clone());
        let mut machine = Machine::compiled(&factor, r, sorter, &cache);
        machine.attach_logger(logger.clone());
        let shape = machine.shape();
        let len = shape.len();
        let bsp = BspMachine::new(&factor, r);
        let program = machine.program().expect("compiled machine").clone();
        let optimized = program.optimized();

        // Claim 1: batch == serial == std sort, elementwise.
        let batch: Vec<Vec<u64>> = (0..BATCH as u64)
            .map(|s| lcg_keys(len, s * 1299721 + 17))
            .collect();
        let serial: Vec<Vec<u64>> = batch
            .iter()
            .map(|keys| {
                let mut k = keys.clone();
                bsp.run(&mut k, &program);
                k
            })
            .collect();
        let reports = machine.sort_batch(batch.clone());
        let batched: Vec<Vec<u64>> = reports
            .into_iter()
            .map(|rep| rep.expect("batch lengths").keys)
            .collect();
        let identical = batched == serial;
        let std_sorted = batched.iter().zip(&batch).all(|(got, input)| {
            let mut expect = input.clone();
            expect.sort_unstable();
            read_snake_order(shape, got) == expect
        });

        // Claim 2: the second machine is a pure cache hit.
        let before = cache.stats();
        let mut again = Machine::compiled(&factor, r, sorter, &cache);
        again.attach_logger(logger.clone());
        let after = cache.stats();
        let cache_ok = after.hits == before.hits + 1
            && after.misses == before.misses
            && after.entries == before.entries;
        let again_out = again.sort(batch[0].clone()).expect("length ok");
        let cached_identical = again_out.keys == serial[0];

        // Claim 3: optimizer shrinks consistently and stays correct.
        let stats = optimized.stats();
        let opt_ok = stats.rounds_after <= stats.rounds_before
            && stats.ops_after == stats.ops_before - stats.compare_exchanges_elided
            && stats.rounds_after
                == stats.rounds_before - stats.empty_rounds_elided - stats.rounds_fused
            && {
                let mut k = batch[0].clone();
                bsp.run_parallel(&mut k, &optimized);
                k == serial[0]
            };

        // Informational wall-clock throughput (not part of `match`).
        let serial_ms = {
            let start = Instant::now();
            for keys in &batch {
                let mut k = keys.clone();
                bsp.run(&mut k, &program);
            }
            start.elapsed().as_secs_f64() * 1e3
        };
        let batch_ms = {
            let mut b = batch.clone();
            let start = Instant::now();
            bsp.run_batch(&mut b, &program);
            start.elapsed().as_secs_f64() * 1e3
        };
        let total_keys = (len * BATCH as u64) as f64;
        let ok = identical && std_sorted && cache_ok && cached_identical && opt_ok;
        report.check(ok);
        report.row(&[
            format!(
                "{} [{:016x}]",
                factor.name(),
                fingerprint(&factor, r, sorter)
            ),
            r.to_string(),
            len.to_string(),
            program.rounds().to_string(),
            optimized.rounds().to_string(),
            program.op_count().to_string(),
            optimized.op_count().to_string(),
            format!("{}/{}", cache.stats().hits, cache.stats().misses),
            format!("{:.0}", total_keys / serial_ms),
            format!("{:.0}", total_keys / batch_ms),
            ok.to_string(),
        ]);
        cache_lines.push(format!("{}: {}", factor.name(), cache.stats()));
    }
    logger.finish();
    report.note(&format!("Final cache state — {}.", cache_lines.join("; ")));
    report.note(&format!(
        "Batch size {BATCH}; throughput columns are wall-clock and \
         host-dependent (everything else is deterministic). The cache \
         column counts hits/misses after constructing the same machine \
         twice: one miss (the first compile), one hit, zero \
         recompilations. Fingerprints are the FNV digest of \
         (n, r, sorter, edge set); the cache itself keys on the full \
         edge set, so equal-size factors with different wiring cannot \
         collide."
    ));
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn throughput_table_matches() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }
}
