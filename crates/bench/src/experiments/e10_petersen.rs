//! E10 — §5.4 Petersen cube: the Petersen graph is Hamiltonian(-path), so
//! `PG_2` contains the 10×10 grid as a subgraph and any grid algorithm
//! sorts 100 keys in constant time; `10^r` keys sort in `O(r²)` steps
//! with a fixed (if not small) constant.

use crate::Report;
use pns_graph::{factories, hamiltonian_path};
use pns_order::radix::Shape;
use pns_simulator::{network_sort, ChargedEngine, CostModel, Machine, ShearSorter};

/// Regenerate the Petersen-cube table.
#[must_use]
pub fn run() -> Report {
    let mut report = Report::new(
        "e10_petersen",
        "§5.4 Petersen cube: 10^r keys in O(r²) steps (S2 = 30 via the \
         10×10 grid subgraph, R = 9 along the Hamiltonian path)",
        &[
            "r",
            "keys",
            "charged steps",
            "30(r-1)²+9(r-1)(r-2)",
            "match",
        ],
    );

    // Structural prerequisite: the Petersen graph has a Hamiltonian path
    // (so PG_2 contains the 10×10 grid with dilation 1).
    let petersen = factories::petersen();
    let ham = hamiltonian_path(&petersen);
    report.check(ham.is_some());
    report.note(&format!(
        "Hamiltonian path found in the Petersen graph: {:?} — grid \
         emulation is dilation-1, as §5.4 requires.",
        ham.as_deref().unwrap_or(&[])
    ));

    let model = CostModel::paper_petersen();
    for r in [2usize, 3] {
        let shape = Shape::new(10, r);
        let mut keys: Vec<u64> = (0..shape.len()).rev().collect();
        let mut engine = ChargedEngine::new(model.clone());
        let out = network_sort(shape, &mut keys, &mut engine);
        assert!(pns_simulator::netsort::is_snake_sorted(shape, &keys));
        let rr = (r - 1) as u64;
        let closed = 30 * rr * rr + 9 * rr * (rr.saturating_sub(1));
        let ok = out.steps == closed;
        report.check(ok);
        report.row(&[
            r.to_string(),
            shape.len().to_string(),
            out.steps.to_string(),
            closed.to_string(),
            ok.to_string(),
        ]);
    }

    // Executed run on the relabeled (Hamiltonian-path-ordered) Petersen
    // factor: every comparator and transposition is an actual edge of the
    // 100-node Petersen square.
    let factor = Machine::prepare_factor(&petersen);
    let mut m = Machine::executed(&factor, 2, &ShearSorter);
    let keys: Vec<u64> = (0..100u64).rev().collect();
    let rep = m.sort(keys).expect("100 keys");
    let ok = rep.is_snake_sorted();
    report.check(ok);
    report.note(&format!(
        "Executed Petersen² (100 nodes, shearsort S2 = {} steps on the \
         embedded 10×10 grid): sorted = {ok}, total steps = {}. The paper \
         remarks the constant 'is not small' but could be improved with a \
         dedicated PG_2 sorter — shearsort's N(2log N+1) = 90 vs the \
         charged 3N = 30 illustrates that trade.",
        m.s2_steps(),
        rep.steps(),
    ));
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn petersen_table_matches() {
        let r = super::run();
        assert!(r.all_match, "{}", r.to_markdown());
    }
}
