//! Experiment harness: one module per paper artifact (figure, lemma,
//! theorem, or Section 5 instantiation), each regenerating the artifact
//! and reporting paper-vs-measured rows.
//!
//! Run any experiment with `cargo run -p pns-bench --bin <id>` (e.g.
//! `e05_cost_model`), or all of them with `--bin all_experiments`.
//! `EXPERIMENTS.md` at the workspace root records the outputs.

pub mod compare;
pub mod report;

pub mod experiments {
    //! The experiment index (see DESIGN.md §3).
    pub mod a01_labeling;
    pub mod a02_pg2_sorter;
    pub mod a03_sorting_network;
    pub mod e01_construction;
    pub mod e02_orders;
    pub mod e03_dirty_window;
    pub mod e04_worked_example;
    pub mod e05_cost_model;
    pub mod e06_universal_bound;
    pub mod e07_grid;
    pub mod e08_mct;
    pub mod e09_hypercube;
    pub mod e10_petersen;
    pub mod e11_debruijn;
    pub mod e12_columnsort;
    pub mod e13_blocks;
    pub mod e14_bsp;
    pub mod e15_randomized;
    pub mod e16_throughput;
    pub mod e17_observability;
    pub mod e18_fault_tolerance;
    pub mod e19_kernel_speedup;
    pub mod e20_vertical_speedup;
    pub mod e21_profile;
    pub mod e22_service;
    pub mod e24_s2_sorters;
}

pub use report::Report;

/// An experiment entry: stable id plus the function regenerating it.
pub type Experiment = (&'static str, fn() -> Report);

/// All experiments in index order, as `(id, runner)` pairs.
#[must_use]
pub fn all_experiments() -> Vec<Experiment> {
    use experiments::*;
    vec![
        ("e01_construction", e01_construction::run as fn() -> Report),
        ("e02_orders", e02_orders::run),
        ("e03_dirty_window", e03_dirty_window::run),
        ("e04_worked_example", e04_worked_example::run),
        ("e05_cost_model", e05_cost_model::run),
        ("e06_universal_bound", e06_universal_bound::run),
        ("e07_grid", e07_grid::run),
        ("e08_mct", e08_mct::run),
        ("e09_hypercube", e09_hypercube::run),
        ("e10_petersen", e10_petersen::run),
        ("e11_debruijn", e11_debruijn::run),
        ("e12_columnsort", e12_columnsort::run),
        ("e13_blocks", e13_blocks::run),
        ("e14_bsp", e14_bsp::run),
        ("e15_randomized", e15_randomized::run),
        ("e16_throughput", e16_throughput::run),
        ("e17_observability", e17_observability::run),
        ("e18_fault_tolerance", e18_fault_tolerance::run),
        ("e19_kernel_speedup", e19_kernel_speedup::run),
        ("e20_vertical_speedup", e20_vertical_speedup::run),
        ("e21_profile", e21_profile::run),
        ("e22_service", e22_service::run),
        ("e24_s2_sorters", e24_s2_sorters::run),
        ("a01_labeling", a01_labeling::run),
        ("a02_pg2_sorter", a02_pg2_sorter::run),
        ("a03_sorting_network", a03_sorting_network::run),
    ]
}
