//! Perf-regression sentinel: diff a current `BENCH_*.json` artifact
//! against a committed baseline and flag metrics that moved the wrong
//! way by more than a threshold.
//!
//! The benchmark artifacts (`BENCH_e19_kernel.json`,
//! `BENCH_e20_vertical.json`, `BENCH_e21_profile.json`) are arrays of
//! flat row objects whose scalar fields mix identity columns (`factor`,
//! `r`, `tier`), informational counts (`nodes`, `rounds`), and the
//! actual metrics. Which fields are metrics — and which direction is
//! "worse" — is encoded in the *names*, so the sentinel needs no
//! per-schema configuration:
//!
//! * `*_ms`, `*_ns`, `*_allocs` — lower is better (times, allocation
//!   counts);
//! * `*_speedup`, `*_ratio`, `*coverage*` — higher is better;
//! * anything else — identity or informational, never compared.
//!
//! Rows are matched across files by their identity columns (`id`,
//! `tier`, `factor`, `r` — whichever are present, joined in that
//! order), so reordering rows in a regenerated artifact is harmless.
//!
//! The vendored `serde_json` deliberately keeps its `Value` tree
//! private, so this module carries its own parser for the one JSON
//! shape the artifacts use: an array of flat objects with string,
//! number, boolean, or null fields. Anything nested is a schema error.
//!
//! The `bench_compare` binary drives [`compare_json`] over a baseline
//! directory and a current directory and exits non-zero when any
//! regression beats the threshold — that exit code is the nightly
//! gate. [`DEFAULT_THRESHOLD`] is deliberately loose (15%) because CI
//! hosts are noisy; deterministic metrics like allocation counts
//! regress through the same gate.

use std::fmt;

/// Relative worsening above which a metric counts as a regression.
pub const DEFAULT_THRESHOLD: f64 = 0.15;

/// A scalar field of a benchmark row.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// A JSON number.
    Num(f64),
    /// A JSON string.
    Text(String),
    /// A JSON boolean.
    Bool(bool),
    /// JSON `null` (e.g. an absent allocation probe).
    Null,
}

/// One parsed row: field names to scalar values, in file order.
pub type Row = Vec<(String, Field)>;

/// Which way a metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Times and allocation counts: an increase is a regression.
    LowerBetter,
    /// Speedups, ratios, coverage: a decrease is a regression.
    HigherBetter,
}

/// Classify a field name as a tracked metric, from its suffix alone.
/// Returns `None` for identity and informational columns.
#[must_use]
pub fn direction(metric: &str) -> Option<Direction> {
    if metric.ends_with("_ms") || metric.ends_with("_ns") || metric.ends_with("_allocs") {
        Some(Direction::LowerBetter)
    } else if metric == "speedup"
        || metric.ends_with("_speedup")
        || metric.ends_with("_ratio")
        || metric.contains("coverage")
    {
        Some(Direction::HigherBetter)
    } else {
        None
    }
}

/// One metric that moved the wrong way past the threshold.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Identity of the row ([`row_id`]).
    pub row: String,
    /// Field name of the metric.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Relative worsening (positive; `INFINITY` when the baseline was
    /// zero and the current value is not).
    pub worsening: f64,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} {} -> {} ({:+.1}%)",
            self.row,
            self.metric,
            self.baseline,
            self.current,
            self.worsening * 100.0
        )
    }
}

/// Outcome of diffing one artifact pair.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Metric values compared (present in both rows, tracked name).
    pub compared: usize,
    /// Metrics that worsened past the threshold.
    pub regressions: Vec<Regression>,
    /// Metrics that *improved* past the threshold (informational; a
    /// big improvement is worth a look too — or a baseline refresh).
    pub improvements: Vec<Regression>,
    /// Baseline rows with no matching current row, and vice versa
    /// (schema drift; reported, not fatal).
    pub unmatched: Vec<String>,
}

impl Comparison {
    /// True when no tracked metric regressed past the threshold.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Identity of a row: the values of its identity columns (`id`,
/// `tier`, `factor`, `r`), joined with `/` in that order. Falls back
/// to `row<index>` when a row has none of them.
#[must_use]
pub fn row_id(row: &Row, index: usize) -> String {
    let mut parts = Vec::new();
    for key in ["id", "tier", "factor", "r"] {
        if let Some((_, v)) = row.iter().find(|(k, _)| k == key) {
            parts.push(match v {
                Field::Text(s) => s.clone(),
                Field::Num(n) => {
                    if n.fract() == 0.0 {
                        format!("{}", *n as i64)
                    } else {
                        format!("{n}")
                    }
                }
                Field::Bool(b) => b.to_string(),
                Field::Null => "null".to_owned(),
            });
        }
    }
    if parts.is_empty() {
        format!("row{index}")
    } else {
        parts.join("/")
    }
}

/// Diff two artifacts (JSON text) under `threshold`.
///
/// # Errors
///
/// Returns a message when either input fails to parse as an array of
/// flat scalar objects.
pub fn compare_json(baseline: &str, current: &str, threshold: f64) -> Result<Comparison, String> {
    let base_rows = parse_rows(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur_rows = parse_rows(current).map_err(|e| format!("current: {e}"))?;
    let mut out = Comparison::default();
    let cur_ids: Vec<String> = cur_rows
        .iter()
        .enumerate()
        .map(|(i, r)| row_id(r, i))
        .collect();
    let mut matched = vec![false; cur_rows.len()];
    for (bi, brow) in base_rows.iter().enumerate() {
        let id = row_id(brow, bi);
        let Some(ci) = cur_ids.iter().position(|c| *c == id) else {
            out.unmatched
                .push(format!("baseline row {id} missing from current"));
            continue;
        };
        matched[ci] = true;
        compare_row(&id, brow, &cur_rows[ci], threshold, &mut out);
    }
    for (ci, was) in matched.iter().enumerate() {
        if !was {
            out.unmatched
                .push(format!("current row {} missing from baseline", cur_ids[ci]));
        }
    }
    Ok(out)
}

fn compare_row(id: &str, base: &Row, cur: &Row, threshold: f64, out: &mut Comparison) {
    for (name, bval) in base {
        let Some(dir) = direction(name) else { continue };
        let (Field::Num(b), Some(Field::Num(c))) =
            (bval, cur.iter().find(|(k, _)| k == name).map(|(_, v)| v))
        else {
            // Null probes (library runs) and missing fields are not
            // comparable; skip rather than invent a number.
            continue;
        };
        out.compared += 1;
        let worsening = match dir {
            Direction::LowerBetter => {
                if *b == 0.0 {
                    if *c == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (c - b) / b
                }
            }
            Direction::HigherBetter => {
                if *b <= 0.0 {
                    // A zero/negative baseline speedup cannot worsen
                    // meaningfully in relative terms.
                    0.0
                } else {
                    (b - c) / b
                }
            }
        };
        let delta = Regression {
            row: id.to_owned(),
            metric: name.clone(),
            baseline: *b,
            current: *c,
            worsening,
        };
        if worsening > threshold {
            out.regressions.push(delta);
        } else if worsening < -threshold {
            out.improvements.push(delta);
        }
    }
}

// ---------------------------------------------------------------------
// Minimal parser: an array of flat objects with scalar fields.
// ---------------------------------------------------------------------

/// Parse an artifact: a JSON array of flat objects whose values are
/// strings, numbers, booleans, or null.
///
/// # Errors
///
/// Returns a message naming the first offending byte offset on any
/// deviation from that shape (including nested arrays or objects).
pub fn parse_rows(src: &str) -> Result<Vec<Row>, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'[')?;
    let mut rows = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b']') {
        p.pos += 1;
    } else {
        loop {
            rows.push(p.object()?);
            p.skip_ws();
            match p.next_byte()? {
                b',' => p.skip_ws(),
                b']' => break,
                c => return Err(p.fail(&format!("expected ',' or ']', got '{}'", c as char))),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing data after the array"));
    }
    Ok(rows)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn fail(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next_byte(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or_else(|| self.fail("unexpected end"))?;
        self.pos += 1;
        Ok(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next_byte()? {
            b if b == want => Ok(()),
            b => {
                self.pos -= 1;
                Err(self.fail(&format!("expected '{}', got '{}'", want as char, b as char)))
            }
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn object(&mut self) -> Result<Row, String> {
        self.expect(b'{')?;
        let mut row = Row::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(row);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.scalar()?;
            row.push((key, value));
            self.skip_ws();
            match self.next_byte()? {
                b',' => {}
                b'}' => break,
                c => return Err(self.fail(&format!("expected ',' or '}}', got '{}'", c as char))),
            }
        }
        Ok(row)
    }

    fn scalar(&mut self) -> Result<Field, String> {
        match self.peek().ok_or_else(|| self.fail("unexpected end"))? {
            b'"' => Ok(Field::Text(self.string()?)),
            b't' => self.literal("true", Field::Bool(true)),
            b'f' => self.literal("false", Field::Bool(false)),
            b'n' => self.literal("null", Field::Null),
            b'{' | b'[' => Err(self.fail("nested values are not a flat benchmark row")),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, value: Field) -> Result<Field, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Field, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Field::Num)
            .map_err(|_| self.fail(&format!("bad number '{text}'")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next_byte()? {
                b'"' => return Ok(out),
                b'\\' => match self.next_byte()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| self.fail("truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.fail("bad \\u escape"))?;
                        self.pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    c => return Err(self.fail(&format!("bad escape '\\{}'", c as char))),
                },
                c => {
                    // Multi-byte UTF-8: copy the raw bytes through.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(c);
                        let chunk = self
                            .bytes
                            .get(start..start + width)
                            .and_then(|s| std::str::from_utf8(s).ok())
                            .ok_or_else(|| self.fail("invalid UTF-8"))?;
                        out.push_str(chunk);
                        self.pos = start + width;
                    }
                }
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// The embedded fixtures behind `bench_compare --self-check`: prove
/// the sentinel fires on a synthetic 20% regression in both metric
/// directions, stays quiet on identical artifacts, and rejects
/// malformed input. Returns the failures (empty = healthy).
#[must_use]
pub fn self_check() -> Vec<String> {
    let baseline = r#"[
      {"factor": "k2", "r": 9, "nodes": 512, "kernel_ms": 10.0, "speedup": 8.0, "coverage": 0.99},
      {"factor": "path3", "r": 3, "nodes": 27, "kernel_ms": 2.0, "speedup": 4.0, "coverage": 0.97}
    ]"#;
    let regressed = r#"[
      {"factor": "k2", "r": 9, "nodes": 512, "kernel_ms": 12.0, "speedup": 6.4, "coverage": 0.99},
      {"factor": "path3", "r": 3, "nodes": 27, "kernel_ms": 2.0, "speedup": 4.0, "coverage": 0.97}
    ]"#;
    let mut failures = Vec::new();
    match compare_json(baseline, baseline, DEFAULT_THRESHOLD) {
        Ok(c) if c.is_clean() && c.compared == 6 && c.unmatched.is_empty() => {}
        Ok(c) => failures.push(format!(
            "identical artifacts should be clean, got {} regressions over {} metrics",
            c.regressions.len(),
            c.compared
        )),
        Err(e) => failures.push(format!("identical artifacts failed to parse: {e}")),
    }
    match compare_json(baseline, regressed, DEFAULT_THRESHOLD) {
        Ok(c) => {
            let hit = |m: &str| {
                c.regressions
                    .iter()
                    .any(|r| r.metric == m && r.row.starts_with("k2"))
            };
            if !hit("kernel_ms") {
                failures.push("20% slower kernel_ms not flagged".to_owned());
            }
            if !hit("speedup") {
                failures.push("20% lower speedup not flagged".to_owned());
            }
            if c.regressions.len() != 2 {
                failures.push(format!(
                    "expected exactly 2 regressions, got {}: {:?}",
                    c.regressions.len(),
                    c.regressions
                ));
            }
        }
        Err(e) => failures.push(format!("regression fixture failed to parse: {e}")),
    }
    if parse_rows("[{\"a\": [1]}]").is_ok() {
        failures.push("nested arrays should be rejected".to_owned());
    }
    if parse_rows("not json").is_ok() {
        failures.push("garbage should be rejected".to_owned());
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_reads_the_artifact_shape() {
        let rows = parse_rows(
            r#"[
              {"factor": "petersen", "r": 2, "ok": true, "bits_allocs": null,
               "bits_ms": 0.5, "note": "a \"quoted\" value"},
              {}
            ]"#,
        )
        .expect("parses");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 6);
        assert_eq!(
            rows[0][0],
            ("factor".into(), Field::Text("petersen".into()))
        );
        assert_eq!(rows[0][1], ("r".into(), Field::Num(2.0)));
        assert_eq!(rows[0][3], ("bits_allocs".into(), Field::Null));
        assert_eq!(
            rows[0][5],
            ("note".into(), Field::Text("a \"quoted\" value".into()))
        );
        assert!(rows[1].is_empty());
        assert!(parse_rows("[{\"a\": {}}]").is_err(), "nested object");
        assert!(parse_rows("[1]").is_err(), "non-object row");
        assert!(parse_rows("[{}] trailing").is_err(), "trailing data");
    }

    #[test]
    fn directions_follow_the_naming_rules() {
        assert_eq!(direction("kernel_ms"), Some(Direction::LowerBetter));
        assert_eq!(direction("span_ns"), Some(Direction::LowerBetter));
        assert_eq!(direction("bits_allocs"), Some(Direction::LowerBetter));
        assert_eq!(direction("bit_speedup"), Some(Direction::HigherBetter));
        assert_eq!(direction("speedup"), Some(Direction::HigherBetter));
        assert_eq!(direction("hit_ratio"), Some(Direction::HigherBetter));
        assert_eq!(direction("coverage"), Some(Direction::HigherBetter));
        assert_eq!(
            direction("span_coverage_pct"),
            Some(Direction::HigherBetter)
        );
        assert_eq!(direction("nodes"), None);
        assert_eq!(direction("rounds"), None);
        assert_eq!(direction("factor"), None);
    }

    #[test]
    fn rows_match_by_identity_not_order() {
        let base = r#"[{"factor": "a", "r": 2, "x_ms": 1.0},
                       {"factor": "b", "r": 3, "x_ms": 1.0}]"#;
        let cur = r#"[{"factor": "b", "r": 3, "x_ms": 1.0},
                      {"factor": "a", "r": 2, "x_ms": 10.0}]"#;
        let c = compare_json(base, cur, DEFAULT_THRESHOLD).expect("parses");
        assert_eq!(c.regressions.len(), 1);
        assert_eq!(c.regressions[0].row, "a/2");
        assert_eq!(c.regressions[0].metric, "x_ms");
        assert!(c.unmatched.is_empty());
    }

    #[test]
    fn unmatched_rows_are_reported_not_fatal() {
        let base = r#"[{"tier": "serial", "x_ms": 1.0}]"#;
        let cur = r#"[{"tier": "kernel", "x_ms": 1.0}]"#;
        let c = compare_json(base, cur, DEFAULT_THRESHOLD).expect("parses");
        assert!(c.is_clean());
        assert_eq!(c.unmatched.len(), 2, "{:?}", c.unmatched);
    }

    #[test]
    fn zero_baselines_are_handled() {
        // Allocation counts: 0 -> 0 clean, 0 -> 1 is an infinite
        // regression (a zero-alloc guarantee broke).
        let base = r#"[{"tier": "bits", "x_allocs": 0}]"#;
        let clean = compare_json(base, base, DEFAULT_THRESHOLD).expect("parses");
        assert!(clean.is_clean());
        let cur = r#"[{"tier": "bits", "x_allocs": 1}]"#;
        let c = compare_json(base, cur, DEFAULT_THRESHOLD).expect("parses");
        assert_eq!(c.regressions.len(), 1);
        assert!(c.regressions[0].worsening.is_infinite());
    }

    #[test]
    fn improvements_are_informational() {
        let base = r#"[{"tier": "k", "x_ms": 10.0}]"#;
        let cur = r#"[{"tier": "k", "x_ms": 5.0}]"#;
        let c = compare_json(base, cur, DEFAULT_THRESHOLD).expect("parses");
        assert!(c.is_clean());
        assert_eq!(c.improvements.len(), 1);
    }

    #[test]
    fn self_check_fixture_is_healthy() {
        let failures = self_check();
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn committed_baseline_is_clean_against_itself() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join("BENCH_baseline");
        let mut checked = 0;
        for entry in std::fs::read_dir(&dir).expect("BENCH_baseline/ exists") {
            let path = entry.expect("readable entry").path();
            if path.extension().is_some_and(|e| e == "json") {
                let text = std::fs::read_to_string(&path).expect("readable baseline");
                let c = compare_json(&text, &text, DEFAULT_THRESHOLD)
                    .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
                assert!(c.is_clean(), "{}: {:?}", path.display(), c.regressions);
                assert!(c.compared > 0, "{}: no tracked metrics", path.display());
                checked += 1;
            }
        }
        assert!(
            checked >= 2,
            "expected committed baselines, found {checked}"
        );
    }
}
