//! Run every experiment in index order and print the combined Markdown —
//! the source of EXPERIMENTS.md. Pass `--json <path>` to also archive the
//! reports as a JSON array.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut reports = Vec::new();
    let mut any_mismatch = false;
    for (id, run) in pns_bench::all_experiments() {
        let report = run();
        println!("{}", report.to_markdown());
        if !report.all_match {
            eprintln!("MISMATCH in {id}");
            any_mismatch = true;
        }
        reports.push(report);
    }
    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&reports).expect("reports serialize");
        std::fs::write(&path, json).expect("write JSON archive");
        eprintln!("wrote {path}");
    }
    assert!(!any_mismatch, "at least one experiment reported a mismatch");
}
