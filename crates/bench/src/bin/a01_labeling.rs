//! Experiment binary: prints the a01_labeling report (see DESIGN.md §3).

fn main() {
    let report = pns_bench::experiments::a01_labeling::run();
    println!("{}", report.to_markdown());
    assert!(report.all_match, "experiment reported a mismatch");
}
