//! Experiment binary: prints the e03_dirty_window report (see DESIGN.md §3).

fn main() {
    let report = pns_bench::experiments::e03_dirty_window::run();
    println!("{}", report.to_markdown());
    assert!(report.all_match, "experiment reported a mismatch");
}
