//! Experiment binary: prints the e05_cost_model report (see DESIGN.md §3).

fn main() {
    let report = pns_bench::experiments::e05_cost_model::run();
    println!("{}", report.to_markdown());
    assert!(report.all_match, "experiment reported a mismatch");
}
