//! Experiment binary: prints the e07_grid report (see DESIGN.md §3).

fn main() {
    let report = pns_bench::experiments::e07_grid::run();
    println!("{}", report.to_markdown());
    assert!(report.all_match, "experiment reported a mismatch");
}
