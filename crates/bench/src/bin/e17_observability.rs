//! Experiment binary: prints the e17_observability report (see DESIGN.md §3).

fn main() {
    let report = pns_bench::experiments::e17_observability::run();
    println!("{}", report.to_markdown());
    assert!(report.all_match, "experiment reported a mismatch");
}
