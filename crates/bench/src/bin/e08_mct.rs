//! Experiment binary: prints the e08_mct report (see DESIGN.md §3).

fn main() {
    let report = pns_bench::experiments::e08_mct::run();
    println!("{}", report.to_markdown());
    assert!(report.all_match, "experiment reported a mismatch");
}
