//! Experiment binary: prints the e16_throughput report (see DESIGN.md §3).

fn main() {
    let report = pns_bench::experiments::e16_throughput::run();
    println!("{}", report.to_markdown());
    assert!(report.all_match, "experiment reported a mismatch");
}
