//! Experiment binary: prints the e14_bsp report (see DESIGN.md §3).

fn main() {
    let report = pns_bench::experiments::e14_bsp::run();
    println!("{}", report.to_markdown());
    assert!(report.all_match, "experiment reported a mismatch");
}
