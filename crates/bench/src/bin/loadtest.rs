//! Loadtest harness for the sorting service: drives the e22 scenario
//! matrix (steady-state, burst-overload, fault-injected) at
//! request-count scale across submitter threads, asserts zero panics
//! and 100% accounting, and appends one JSON line per scenario to
//! `loadtest.jsonl` for the nightly artifact upload.
//!
//! ```text
//! loadtest [--smoke] [--scale N]
//! ```
//!
//! `--smoke` runs a seconds-bounded pass for tier-1 CI (steady row of
//! 20k requests); the default nightly scale is 2,000,000 steady-row
//! requests (≈3.1M total across the matrix). `--scale N` overrides the
//! steady-row request count directly.

use pns_bench::experiments::e22_service::{drive, scenarios, OBS_TAX_BUDGET_PCT};

const NIGHTLY_SCALE: u64 = 2_000_000;
const SMOKE_SCALE: u64 = 20_000;

#[allow(clippy::cast_precision_loss)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--scale takes a request count"))
        .unwrap_or(if smoke { SMOKE_SCALE } else { NIGHTLY_SCALE });

    let mut lines = Vec::new();
    let mut failures = Vec::new();
    for scenario in scenarios(scale) {
        let outcome = drive(&scenario);
        let accounted = outcome.fully_accounted();
        println!(
            "{:>16}: {} submitted | {} sorted ({} degraded) | {} timeout | {} rejected | \
             {} failed | p50 {:.3}ms p99 {:.3}ms | {:.1} kreq/s | accounted: {}",
            scenario.name,
            outcome.submitted,
            outcome.completed,
            outcome.degraded,
            outcome.timeouts,
            outcome.rejected,
            outcome.failed,
            outcome.latency.quantile_ns(0.5) as f64 / 1e6,
            outcome.latency.quantile_ns(0.99) as f64 / 1e6,
            outcome.throughput_per_sec() / 1e3,
            accounted,
        );
        if !accounted {
            failures.push(format!("{}: requests unaccounted", scenario.name));
        }
        if outcome.failed > 0 {
            failures.push(format!(
                "{}: {} terminal failures",
                scenario.name, outcome.failed
            ));
        }
        if outcome.unsorted > 0 {
            failures.push(format!(
                "{}: {} unsorted responses",
                scenario.name, outcome.unsorted
            ));
        }
        if scenario.name == "burst_overload" && outcome.rejected == 0 {
            failures.push("burst_overload: no typed sheds observed".to_owned());
        }
        lines.push(format!(
            r#"{{"scenario":"{}","submitted":{},"completed":{},"degraded":{},"timeouts":{},"rejected":{},"failed":{},"unsorted":{},"p50_ns":{},"p99_ns":{},"wall_ns":{},"throughput_per_sec":{:.1}}}"#,
            scenario.name,
            outcome.submitted,
            outcome.completed,
            outcome.degraded,
            outcome.timeouts,
            outcome.rejected,
            outcome.failed,
            outcome.unsorted,
            outcome.latency.quantile_ns(0.5),
            outcome.latency.quantile_ns(0.99),
            outcome.wall_ns,
            outcome.throughput_per_sec(),
        ));
    }
    std::fs::write("loadtest.jsonl", lines.join("\n") + "\n").expect("write loadtest.jsonl");
    eprintln!(
        "wrote loadtest.jsonl ({} scenarios, obs budget {OBS_TAX_BUDGET_PCT}%)",
        lines.len()
    );
    assert!(
        failures.is_empty(),
        "loadtest invariants violated:\n  {}",
        failures.join("\n  ")
    );
}
