//! Experiment binary: prints the e11_debruijn report (see DESIGN.md §3).

fn main() {
    let report = pns_bench::experiments::e11_debruijn::run();
    println!("{}", report.to_markdown());
    assert!(report.all_match, "experiment reported a mismatch");
}
