//! Experiment binary: prints the e04_worked_example report (see DESIGN.md §3).

fn main() {
    let report = pns_bench::experiments::e04_worked_example::run();
    println!("{}", report.to_markdown());
    assert!(report.all_match, "experiment reported a mismatch");
}
