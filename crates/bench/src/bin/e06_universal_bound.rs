//! Experiment binary: prints the e06_universal_bound report (see DESIGN.md §3).

fn main() {
    let report = pns_bench::experiments::e06_universal_bound::run();
    println!("{}", report.to_markdown());
    assert!(report.all_match, "experiment reported a mismatch");
}
