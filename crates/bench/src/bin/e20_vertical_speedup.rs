//! Experiment binary: prints the e20_vertical_speedup report and
//! writes the measured rows to `BENCH_e20_vertical.json` (nightly CI
//! uploads it as an artifact so vertical-vs-kernel timings are tracked
//! over time).
//!
//! This binary installs a counting `#[global_allocator]`, so the
//! report also proves the vertical tier's zero-allocation claim, and —
//! because its timings are release-mode — it enforces the ISSUE-6
//! acceptance bar: the bit-sliced path must beat `run_kernel_batch` by
//! at least 4× on the same 64 zero-one lanes.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn main() {
    let rows = pns_bench::experiments::e20_vertical_speedup::collect(Some(allocations));
    let report = pns_bench::experiments::e20_vertical_speedup::report_from_rows(&rows);
    println!("{}", report.to_markdown());
    let json = serde_json::to_string_pretty(&rows).expect("rows serialize");
    std::fs::write("BENCH_e20_vertical.json", json).expect("write BENCH_e20_vertical.json");
    eprintln!("wrote BENCH_e20_vertical.json ({} configs)", rows.len());
    assert!(report.all_match, "experiment reported a mismatch");
    for row in &rows {
        assert!(
            row.bit_speedup >= 4.0,
            "{}^{}: bit speedup {:.1}x below the 4x acceptance bar",
            row.factor,
            row.r,
            row.bit_speedup
        );
    }
}
