//! Experiment binary: prints the e15_randomized report (see DESIGN.md §3).

fn main() {
    let report = pns_bench::experiments::e15_randomized::run();
    println!("{}", report.to_markdown());
    assert!(report.all_match, "experiment reported a mismatch");
}
