//! Experiment binary: prints the e09_hypercube report (see DESIGN.md §3).

fn main() {
    let report = pns_bench::experiments::e09_hypercube::run();
    println!("{}", report.to_markdown());
    assert!(report.all_match, "experiment reported a mismatch");
}
