//! The perf-regression sentinel. Diffs current `BENCH_*.json`
//! artifacts against a committed baseline directory and exits non-zero
//! when any tracked metric worsened past the threshold:
//!
//! ```text
//! bench_compare [--threshold 0.15] <baseline-dir> <current-dir>
//! bench_compare --self-check
//! ```
//!
//! Every `*.json` in the baseline directory must have a same-named
//! counterpart in the current directory (a benchmark that stopped
//! producing its artifact is itself a regression); extra files in the
//! current directory are new benchmarks without a baseline yet and are
//! listed but not compared. Metric direction comes from the field name
//! (`*_ms`/`*_ns`/`*_allocs` lower-better, `*_speedup`/`*_ratio`/
//! `*coverage*` higher-better); see `pns_bench::compare`.
//!
//! `--self-check` runs the embedded fixtures instead (a synthetic 20%
//! regression must be flagged, identical artifacts must pass, garbage
//! must be rejected) — the tier-1 CI smoke that proves the sentinel
//! itself still fires.
//!
//! Exit codes: 0 clean, 1 regression (or failed self-check), 2 usage
//! or I/O error.

use pns_bench::compare::{compare_json, self_check, DEFAULT_THRESHOLD};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut threshold = DEFAULT_THRESHOLD;
    let mut dirs: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--self-check" => {
                let failures = self_check();
                if failures.is_empty() {
                    println!("bench_compare self-check: ok");
                    return ExitCode::SUCCESS;
                }
                for f in &failures {
                    eprintln!("bench_compare self-check FAILED: {f}");
                }
                return ExitCode::FAILURE;
            }
            "--threshold" => {
                let Some(value) = args.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--threshold needs a number");
                    return ExitCode::from(2);
                };
                threshold = value;
            }
            other => dirs.push(other.to_owned()),
        }
    }
    let [baseline_dir, current_dir] = dirs.as_slice() else {
        eprintln!(
            "usage: bench_compare [--threshold {DEFAULT_THRESHOLD}] <baseline-dir> <current-dir>\n       bench_compare --self-check"
        );
        return ExitCode::from(2);
    };

    let mut baselines: Vec<String> = match std::fs::read_dir(baseline_dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.ends_with(".json"))
            .collect(),
        Err(e) => {
            eprintln!("cannot read baseline dir {baseline_dir}: {e}");
            return ExitCode::from(2);
        }
    };
    baselines.sort();
    if baselines.is_empty() {
        eprintln!("no *.json baselines in {baseline_dir}");
        return ExitCode::from(2);
    }

    let mut regressed = false;
    for name in &baselines {
        let base_path = Path::new(baseline_dir).join(name);
        let cur_path = Path::new(current_dir).join(name);
        let base = match std::fs::read_to_string(&base_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", base_path.display());
                return ExitCode::from(2);
            }
        };
        let cur = match std::fs::read_to_string(&cur_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "REGRESSION {name}: current artifact missing ({}: {e})",
                    cur_path.display()
                );
                regressed = true;
                continue;
            }
        };
        match compare_json(&base, &cur, threshold) {
            Ok(c) => {
                println!(
                    "{name}: {} metrics compared, {} regressions, {} improvements",
                    c.compared,
                    c.regressions.len(),
                    c.improvements.len()
                );
                for r in &c.regressions {
                    eprintln!("  REGRESSION {r}");
                    regressed = true;
                }
                for i in &c.improvements {
                    println!("  improved {i}");
                }
                for u in &c.unmatched {
                    println!("  note: {u}");
                }
            }
            Err(e) => {
                eprintln!("REGRESSION {name}: {e}");
                regressed = true;
            }
        }
    }
    if regressed {
        eprintln!("bench_compare: regressions past {:.0}%", threshold * 100.0);
        ExitCode::FAILURE
    } else {
        println!("bench_compare: clean at {:.0}%", threshold * 100.0);
        ExitCode::SUCCESS
    }
}
