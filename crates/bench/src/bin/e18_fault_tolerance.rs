//! Experiment binary: prints the e18_fault_tolerance report (see DESIGN.md §3).

fn main() {
    let report = pns_bench::experiments::e18_fault_tolerance::run();
    println!("{}", report.to_markdown());
    assert!(report.all_match, "experiment reported a mismatch");
}
