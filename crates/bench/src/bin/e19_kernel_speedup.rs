//! Experiment binary: prints the e19_kernel_speedup report and writes
//! the measured rows to `BENCH_e19_kernel.json` (nightly CI uploads it
//! as an artifact so kernel-vs-interpreter timings are tracked over
//! time).
//!
//! This binary installs a counting `#[global_allocator]`, so the report
//! also proves the kernel tier's zero-allocation claim: warm
//! `run_kernel` calls must not touch the heap at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn main() {
    let rows = pns_bench::experiments::e19_kernel_speedup::collect(Some(allocations));
    let report = pns_bench::experiments::e19_kernel_speedup::report_from_rows(&rows);
    println!("{}", report.to_markdown());
    let json = serde_json::to_string_pretty(&rows).expect("rows serialize");
    std::fs::write("BENCH_e19_kernel.json", json).expect("write BENCH_e19_kernel.json");
    eprintln!("wrote BENCH_e19_kernel.json ({} configs)", rows.len());
    assert!(report.all_match, "experiment reported a mismatch");
}
