//! Experiment binary: prints the e13_blocks report (see DESIGN.md §3).

fn main() {
    let report = pns_bench::experiments::e13_blocks::run();
    println!("{}", report.to_markdown());
    assert!(report.all_match, "experiment reported a mismatch");
}
