//! Experiment binary: prints the e12_columnsort report (see DESIGN.md §3).

fn main() {
    let report = pns_bench::experiments::e12_columnsort::run();
    println!("{}", report.to_markdown());
    assert!(report.all_match, "experiment reported a mismatch");
}
