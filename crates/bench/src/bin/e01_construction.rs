//! Experiment binary: prints the e01_construction report (see DESIGN.md §3).

fn main() {
    let report = pns_bench::experiments::e01_construction::run();
    println!("{}", report.to_markdown());
    assert!(report.all_match, "experiment reported a mismatch");
}
