//! Experiment binary: prints the e21_profile report and writes the
//! measured rows to `BENCH_e21_profile.json` (nightly CI uploads it as
//! an artifact and diffs it against `BENCH_baseline/` with
//! `bench_compare`, so per-tier timings are tracked over time).

fn main() {
    let rows = pns_bench::experiments::e21_profile::collect();
    let report = pns_bench::experiments::e21_profile::report_from_rows(&rows);
    println!("{}", report.to_markdown());
    let json = serde_json::to_string_pretty(&rows).expect("rows serialize");
    std::fs::write("BENCH_e21_profile.json", json).expect("write BENCH_e21_profile.json");
    eprintln!("wrote BENCH_e21_profile.json ({} tiers)", rows.len());
    assert!(report.all_match, "experiment reported a mismatch");
}
