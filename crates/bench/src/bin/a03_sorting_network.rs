//! Experiment binary: prints the a03_sorting_network report (see DESIGN.md §3).

fn main() {
    let report = pns_bench::experiments::a03_sorting_network::run();
    println!("{}", report.to_markdown());
    assert!(report.all_match, "experiment reported a mismatch");
}
