//! Experiment binary: runs the e22_service scenario matrix at
//! benchmark scale, prints the report, and writes the measured rows to
//! `BENCH_e22_service.json` (nightly CI uploads the artifact and diffs
//! it against `BENCH_baseline/` with `bench_compare`, so steady-state
//! p50/p99 service latency is tracked over time).

fn main() {
    let rows = pns_bench::experiments::e22_service::collect();
    let report = pns_bench::experiments::e22_service::report_from_rows(&rows);
    println!("{}", report.to_markdown());
    let json = serde_json::to_string_pretty(&rows).expect("rows serialize");
    std::fs::write("BENCH_e22_service.json", json).expect("write BENCH_e22_service.json");
    eprintln!("wrote BENCH_e22_service.json ({} scenarios)", rows.len());
    assert!(report.all_match, "experiment reported a mismatch");
}
