//! Experiment binary: prints the e10_petersen report (see DESIGN.md §3).

fn main() {
    let report = pns_bench::experiments::e10_petersen::run();
    println!("{}", report.to_markdown());
    assert!(report.all_match, "experiment reported a mismatch");
}
