//! Experiment binary: prints the e24_s2_sorters report and writes the
//! measured rows to `BENCH_e24_s2.json` (nightly CI uploads it as an
//! artifact so per-sorter tier timings are tracked over time).
//!
//! Beyond the library's deterministic claims, this binary asserts the
//! release-mode acceptance bar: on at least one dense fixture a new
//! sorter (multiway n-sorter or periodic merge) must beat the OET
//! snake on measured kernel- or vertical-tier wall-time, not just on
//! round counts.

fn main() {
    let rows = pns_bench::experiments::e24_s2_sorters::collect();
    let report = pns_bench::experiments::e24_s2_sorters::report_from_rows(&rows);
    println!("{}", report.to_markdown());
    let json = serde_json::to_string_pretty(&rows).expect("rows serialize");
    std::fs::write("BENCH_e24_s2.json", json).expect("write BENCH_e24_s2.json");
    eprintln!("wrote BENCH_e24_s2.json ({} rows)", rows.len());
    assert!(report.all_match, "experiment reported a mismatch");

    // Release-mode wall-time bar: fewer compiled rounds must cash out
    // as a measured win on a dense fixture for at least one new sorter.
    let wall_win = rows.iter().any(|row| {
        if !(row.sorter == "multiway-nsorter" || row.sorter == "periodic-merge") {
            return false;
        }
        rows.iter().any(|oet| {
            oet.factor == row.factor
                && oet.r == row.r
                && oet.sorter == "oet-snake"
                && (row.factor == "K4" || row.factor == "K8")
                && (row.kernel_ms < oet.kernel_ms || row.vertical_ms < oet.vertical_ms)
        })
    });
    assert!(
        wall_win,
        "no new sorter beat oet-snake on kernel or vertical wall-time"
    );
    eprintln!("wall-time win over oet-snake confirmed on a dense fixture");
}
