//! Experiment binary: prints the a02_pg2_sorter report (see DESIGN.md §3).

fn main() {
    let report = pns_bench::experiments::a02_pg2_sorter::run();
    println!("{}", report.to_markdown());
    assert!(report.all_match, "experiment reported a mismatch");
}
