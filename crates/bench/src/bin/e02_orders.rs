//! Experiment binary: prints the e02_orders report (see DESIGN.md §3).

fn main() {
    let report = pns_bench::experiments::e02_orders::run();
    println!("{}", report.to_markdown());
    assert!(report.all_match, "experiment reported a mismatch");
}
