//! Experiment reports: titled tables with notes, rendered as Markdown and
//! serializable to JSON for archival.

use serde::{Deserialize, Serialize};

/// One experiment's output: a titled table plus free-form notes.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct Report {
    /// Experiment id, e.g. `e05_cost_model`.
    pub id: String,
    /// What paper artifact this regenerates.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Table rows (stringified cells).
    pub rows: Vec<Vec<String>>,
    /// Interpretation notes (one paragraph per entry).
    pub notes: Vec<String>,
    /// `true` when every checked row matched its prediction.
    pub all_match: bool,
}

impl Report {
    /// Start a report.
    #[must_use]
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Report {
            id: id.to_owned(),
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            all_match: true,
        }
    }

    /// Append a row (stringifying cells).
    pub fn row<S: ToString>(&mut self, cells: &[S]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(ToString::to_string).collect());
    }

    /// Append a note paragraph.
    pub fn note(&mut self, text: &str) {
        self.notes.push(text.to_owned());
    }

    /// Record a prediction check; a failed check marks the report.
    pub fn check(&mut self, ok: bool) {
        self.all_match &= ok;
    }

    /// Render as Markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n\n", self.id, self.title));
        if !self.headers.is_empty() {
            out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
            out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
            for row in &self.rows {
                out.push_str(&format!("| {} |\n", row.join(" | ")));
            }
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(note);
            out.push_str("\n\n");
        }
        out.push_str(&format!(
            "**Result: {}**\n",
            if self.all_match {
                "all rows match"
            } else {
                "MISMATCH"
            }
        ));
        out
    }
}

/// The experiment-harness event logger, configured by the `PNS_OBS`
/// environment variable (`jsonl[:path]` appends machine-readable events
/// to a file, `summary` prints an aggregate table to stderr on finish,
/// anything else disables tracing at zero cost). `label` titles the
/// summary output; experiments pass their id. Call
/// [`pns_obs::EventLogger::finish`] when the experiment is done so
/// buffered events reach the sink.
#[must_use]
pub fn obs_logger(label: &str) -> pns_obs::EventLogger {
    pns_obs::EventLogger::from_env(label)
}

/// Render one or more `(x, y)` series as a fixed-width ASCII chart —
/// the "figure" companion to the experiment tables. Each series gets a
/// distinct glyph; the y-axis is linearly scaled to the data range.
#[must_use]
pub fn ascii_chart(title: &str, series: &[(&str, Vec<(f64, f64)>)]) -> String {
    const WIDTH: usize = 60;
    const HEIGHT: usize = 16;
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .collect();
    if points.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in &points {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if (x1 - x0).abs() < f64::EPSILON {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < f64::EPSILON {
        y1 = y0 + 1.0;
    }
    let mut grid = vec![vec![' '; WIDTH]; HEIGHT];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in pts {
            let cx = (((x - x0) / (x1 - x0)) * (WIDTH - 1) as f64).round() as usize;
            let cy = (((y - y0) / (y1 - y0)) * (HEIGHT - 1) as f64).round() as usize;
            grid[HEIGHT - 1 - cy][cx] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y1:>10.0} |")
        } else if i == HEIGHT - 1 {
            format!("{y0:>10.0} |")
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>11}+{}\n", "", "-".repeat(WIDTH)));
    out.push_str(&format!("{:>12}{x0:<10.0}{:>38}{x1:>10.0}\n", "", ""));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} = {name}\n", GLYPHS[si % GLYPHS.len()]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_renders_all_series() {
        let s = ascii_chart(
            "steps vs N",
            &[
                ("ours", vec![(4.0, 100.0), (8.0, 200.0), (16.0, 400.0)]),
                ("bound", vec![(4.0, 150.0), (8.0, 300.0), (16.0, 600.0)]),
            ],
        );
        assert!(s.contains("steps vs N"));
        assert!(s.contains('*'));
        assert!(s.contains('o'));
        assert!(s.contains("* = ours"));
        assert!(s.contains("o = bound"));
    }

    #[test]
    fn chart_handles_degenerate_data() {
        let s = ascii_chart("flat", &[("c", vec![(1.0, 5.0), (2.0, 5.0)])]);
        assert!(s.contains("flat"));
        let s = ascii_chart("empty", &[]);
        assert!(s.contains("no data"));
    }

    #[test]
    fn builds_and_renders() {
        let mut r = Report::new("e00", "smoke", &["a", "b"]);
        r.row(&[1, 2]);
        r.row(&["x".to_string(), "y".to_string()]);
        r.note("a note");
        r.check(true);
        let md = r.to_markdown();
        assert!(md.contains("## e00 — smoke"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("a note"));
        assert!(md.contains("all rows match"));
    }

    #[test]
    fn failed_check_is_visible() {
        let mut r = Report::new("e00", "smoke", &[]);
        r.check(false);
        assert!(r.to_markdown().contains("MISMATCH"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut r = Report::new("e00", "smoke", &["a"]);
        r.row(&[1, 2]);
    }

    #[test]
    fn json_roundtrip() {
        let mut r = Report::new("e01", "t", &["h"]);
        r.row(&[42]);
        let json = serde_json::to_string(&r).unwrap();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
