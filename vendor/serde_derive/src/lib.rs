//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored serde's [`Serialize`]/[`Deserialize`] (the
//! Value-tree contract) for the shapes this workspace actually uses:
//! non-generic structs with named fields, and non-generic enums whose
//! variants are unit or have named fields. Enums use serde's
//! externally-tagged representation (`{"Variant": {..fields..}}`, bare
//! `"Variant"` for unit variants), so emitted JSON matches upstream.
//!
//! Parsing is a small hand-rolled scan over the raw token stream — the
//! container has no network access, so `syn`/`quote` are unavailable.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Enum: `(variant name, named fields — empty for unit variants)`.
    Enum(Vec<(String, Vec<String>)>),
}

/// Skip attribute tokens (`#[...]`, including doc comments) starting at
/// `i`; returns the next unconsumed index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, …) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parse the named fields of a brace-delimited body: returns field names.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde stand-in derive: expected field name, found {other}"),
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("serde stand-in derive: expected `:` after field `{name}`"),
        }
        fields.push(name);
        // Consume the type up to the next comma at angle-bracket depth 0.
        let mut angle = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Parse the variants of an enum body.
fn parse_variants(body: TokenStream) -> Vec<(String, Vec<String>)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde stand-in derive: expected variant name, found {other}"),
            None => break,
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                parse_named_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde stand-in derive: tuple variant `{name}` is unsupported")
            }
            _ => Vec::new(),
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            } else if p.as_char() == '=' {
                panic!("serde stand-in derive: discriminants are unsupported");
            }
        }
        variants.push((name, fields));
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind_kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in derive: expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde stand-in derive: generic type `{name}` is unsupported");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde stand-in derive: expected braced body for `{name}` \
             (tuple/unit types unsupported), found {other:?}"
        ),
    };
    let kind = match kind_kw.as_str() {
        "struct" => Kind::Struct(parse_named_fields(body)),
        "enum" => Kind::Enum(parse_variants(body)),
        other => panic!("serde stand-in derive: unsupported item kind `{other}`"),
    };
    Input { name, kind }
}

/// Derive the vendored serde's `Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Input { name, kind } = parse_input(input);
    let body = match &kind {
        Kind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| {
                    if fields.is_empty() {
                        format!("{name}::{v} => ::serde::Value::Str(String::from(\"{v}\")),")
                    } else {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(vec![\
                             (String::from(\"{v}\"), ::serde::Value::Map(vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde stand-in derive: generated Serialize impl must parse")
}

fn struct_ctor(path: &str, fields: &[String], source: &str, ty: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value({source}.get(\"{f}\").ok_or_else(|| \
                 ::serde::Error::msg(\"missing field `{f}` in {ty}\"))?)?"
            )
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

/// Derive the vendored serde's `Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Input { name, kind } = parse_input(input);
    let body = match &kind {
        Kind::Struct(fields) => {
            format!("Ok({})", struct_ctor(&name, fields, "v", &name))
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, fields)| fields.is_empty())
                .map(|(v, _)| format!("\"{v}\" => return Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|(_, fields)| !fields.is_empty())
                .map(|(v, fields)| {
                    format!(
                        "\"{v}\" => return Ok({}),",
                        struct_ctor(&format!("{name}::{v}"), fields, "inner", &name)
                    )
                })
                .collect();
            let unit_match = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::serde::Value::Str(s) = v {{\n\
                         match s.as_str() {{ {} _ => {{}} }}\n\
                     }}",
                    unit_arms.join(" ")
                )
            };
            let tagged_match = if tagged_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::serde::Value::Map(entries) = v {{\n\
                         if entries.len() == 1 {{\n\
                             let (tag, inner) = &entries[0];\n\
                             match tag.as_str() {{ {} _ => {{}} }}\n\
                         }}\n\
                     }}",
                    tagged_arms.join(" ")
                )
            };
            format!(
                "{unit_match}\n{tagged_match}\n\
                 Err(::serde::Error::msg(format!(\"no variant of {name} matches {{v:?}}\")))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde stand-in derive: generated Deserialize impl must parse")
}
