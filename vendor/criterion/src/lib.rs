//! Offline stand-in for `criterion`: same macro and builder surface,
//! minimal measurement engine.
//!
//! Each benchmark runs a short warm-up, then adaptively picks an
//! iteration count targeting ~200 ms of measurement, and reports the
//! mean time per iteration on stdout. No statistics, plots, or saved
//! baselines — just honest wall-clock numbers suitable for comparing
//! alternatives in one run (e.g. serial vs batched executors).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
}

impl Bencher {
    /// Measure `f`: warm up, pick an iteration count targeting ~200 ms,
    /// time it, and record the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: time single iterations until 10 ms or
        // 10 iterations, whichever comes first.
        let mut one = Duration::ZERO;
        let mut warm = 0u32;
        let warm_start = Instant::now();
        while warm < 10 && warm_start.elapsed() < Duration::from_millis(10) {
            let t = Instant::now();
            black_box(f());
            one += t.elapsed();
            warm += 1;
        }
        let per = (one / warm.max(1)).max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(200).as_nanos() / per.as_nanos()).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    fn run_one<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        println!("{}/{id}  time: {}", self.name, human(b.mean_ns));
    }

    /// Benchmark `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.id.clone();
        self.run_one(&name, |b| f(b, input));
    }

    /// Benchmark `f`.
    pub fn bench_function<B: Into<BenchmarkId>, F>(&mut self, id: B, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.id.clone(), |b| f(b));
    }

    /// Accepted for API compatibility; the stub has no sampling phases.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("# group {name}");
        BenchmarkGroup {
            name: name.to_owned(),
            _parent: self,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        println!("{name}  time: {}", human(b.mean_ns));
        self
    }
}

/// Declare a group-running function, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the benchmark `main`, as in upstream criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { mean_ns: 0.0 };
        b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()));
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("sort", 64).id, "sort/64");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
