//! Offline stand-in for `rayon`: the slice-oriented subset of the
//! parallel-iterator API this workspace uses, implemented with
//! `std::thread::scope` fork-join over contiguous chunks.
//!
//! Unlike a serial shim, this is **really parallel**: `map`/`for_each`
//! split the input into one contiguous chunk per available core and run
//! them on scoped OS threads. There is no work stealing — fine for the
//! regular, evenly-sized rounds the simulator produces. `collect`
//! preserves input order.

use std::num::NonZeroUsize;

/// Number of worker threads used for parallel operations.
#[must_use]
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Run `f` over order-preserving chunks of `items` on scoped threads and
/// return the per-chunk outputs in input order.
fn fork_join_chunks<'a, T, R, F>(items: &'a [T], threads: usize, f: F) -> Vec<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&'a [T]) -> Vec<R> + Sync,
{
    let chunk = items.len().div_ceil(threads.max(1)).max(1);
    std::thread::scope(|s| {
        let handles: Vec<_> = items.chunks(chunk).map(|c| s.spawn(|| f(c))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon-stub worker panicked"))
            .collect()
    })
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each element in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Apply `f` to every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let threads = current_num_threads();
        if threads <= 1 || self.items.len() <= 1 {
            self.items.iter().for_each(f);
            return;
        }
        let _ = fork_join_chunks(self.items, threads, |chunk| {
            chunk.iter().for_each(&f);
            Vec::<()>::new()
        });
    }
}

/// The result of [`ParIter::map`], consumed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Collect mapped outputs, preserving input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: From<Vec<R>>,
    {
        let threads = current_num_threads();
        let out: Vec<R> = if threads <= 1 || self.items.len() <= 1 {
            self.items.iter().map(&self.f).collect()
        } else {
            fork_join_chunks(self.items, threads, |chunk| {
                chunk.iter().map(&self.f).collect()
            })
            .into_iter()
            .flatten()
            .collect()
        };
        C::from(out)
    }

    /// Apply the mapped function for its side effects only.
    pub fn for_each<G, R>(self, g: G)
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        G: Fn(R) + Sync,
    {
        let threads = current_num_threads();
        if threads <= 1 || self.items.len() <= 1 {
            self.items.iter().map(&self.f).for_each(g);
            return;
        }
        let _ = fork_join_chunks(self.items, threads, |chunk| {
            chunk.iter().map(&self.f).for_each(&g);
            Vec::<()>::new()
        });
    }
}

/// Mutably borrowing parallel iterator over a slice.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Apply `f` to every element in parallel (disjoint `&mut` chunks).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let threads = current_num_threads();
        if threads <= 1 || self.items.len() <= 1 {
            self.items.iter_mut().for_each(f);
            return;
        }
        let chunk = self.items.len().div_ceil(threads).max(1);
        std::thread::scope(|s| {
            for c in self.items.chunks_mut(chunk) {
                s.spawn(|| c.iter_mut().for_each(&f));
            }
        });
    }
}

/// `.par_iter()` on slices (and anything that derefs to a slice).
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: 'a;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// `.par_iter_mut()` on slices (and anything that derefs to a slice).
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type.
    type Item: 'a;
    /// Mutably borrowing parallel iterator.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

pub mod prelude {
    //! Glob-importable traits, as in upstream rayon.
    pub use crate::{IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn for_each_mut_touches_every_element() {
        let mut xs: Vec<u64> = vec![1; 5000];
        xs.par_iter_mut().for_each(|x| *x += 1);
        assert!(xs.iter().all(|&x| x == 2));
    }

    #[test]
    fn runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let xs: Vec<u32> = (0..1024).collect();
        xs.par_iter().for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        let distinct = ids.lock().unwrap().len();
        if super::current_num_threads() > 1 {
            assert!(distinct > 1, "expected work on more than one thread");
        }
    }
}
