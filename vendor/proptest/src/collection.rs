//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// Element-count range for collection strategies (upstream `SizeRange`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Strategy for a `Vec` whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let span = self.size.hi - self.size.lo + 1;
        let len = self.size.lo + rng.below(span as u64) as usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng)?);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_and_element_ranges() {
        let strat = vec(0u16..100, 1..64);
        let mut rng = TestRng::new(11);
        for _ in 0..200 {
            let v = strat.generate(&mut rng).unwrap();
            assert!((1..64).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }
}
