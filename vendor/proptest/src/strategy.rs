//! Value-generation strategies for the proptest stand-in.
//!
//! A [`Strategy`] produces a value from a seeded [`TestRng`], or `None`
//! when a filter rejects the draw (the runner retries with a fresh seed
//! without consuming a test case). There is no shrinking: strategies
//! are pure generators.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator (SplitMix64): every case is a pure function
/// of its seed, which is what the regression files record.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range");
        // Modulo bias is ≤ bound/2^64 — irrelevant for test generation.
        self.next_u64() % bound
    }
}

/// How many consecutive `None`s a nested strategy tolerates before
/// giving up and propagating the rejection outward.
const LOCAL_RETRIES: usize = 32;

pub trait Strategy {
    type Value;

    /// Draw one value, or `None` if a filter rejected this draw.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discard values failing `pred`. `_whence` is a label kept for
    /// upstream signature compatibility; rejections are retried by the
    /// runner, which reports if the filter is too tight.
    fn prop_filter<R: Into<String>, F: Fn(&Self::Value) -> bool>(
        self,
        _whence: R,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        for _ in 0..LOCAL_RETRIES {
            if let Some(v) = self.inner.generate(rng) {
                if (self.pred)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

/// Always produce a clone of `value` (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = if span > u128::from(u64::MAX) {
                    // Only reachable for 128-bit-wide ranges; unused here.
                    u128::from(rng.next_u64())
                } else {
                    u128::from(rng.below(span as u64))
                };
                Some((self.start as i128 + off as i128) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = if span > u128::from(u64::MAX) {
                    u128::from(rng.next_u64())
                } else {
                    u128::from(rng.below(span as u64))
                };
                Some((lo as i128 + off as i128) as $t)
            }
        }

        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Full-domain strategy for `T` (upstream `any::<T>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($s,)+) = self;
                Some(($($s.generate(rng)?,)+))
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(42);
        for _ in 0..1000 {
            let v = (2usize..8).generate(&mut rng).unwrap();
            assert!((2..8).contains(&v));
            let w = (-5i32..=5).generate(&mut rng).unwrap();
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = (0u64..1000).prop_map(|x| x * 2);
        let a: Vec<u64> = (0..10)
            .map(|_| strat.generate(&mut TestRng::new(7)).unwrap())
            .collect();
        assert!(a.iter().all(|&x| x == a[0]));
    }

    #[test]
    fn filter_rejects_and_retries() {
        let strat = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let v = strat.generate(&mut rng).unwrap();
            assert_eq!(v % 2, 0);
        }
        // An unsatisfiable filter rejects rather than looping forever.
        let never = (0u32..4).prop_filter("no", |_| false);
        assert!(never.generate(&mut rng).is_none());
    }
}
