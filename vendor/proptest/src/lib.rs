//! Offline stand-in for `proptest`.
//!
//! Same testing *shape* as upstream — the `proptest!` macro over
//! `pattern in strategy` arguments, `prop_assert*`/`prop_assume`,
//! strategy combinators (`prop_map`, `prop_filter`,
//! `collection::vec`), `ProptestConfig::with_cases`, and
//! `proptest-regressions` seed files — with a much simpler engine:
//!
//! * generation is a deterministic function of a per-test seed
//!   (FNV of file path + test name + case index), so failures are
//!   reproducible without any environment setup;
//! * failing seeds are appended to
//!   `tests/proptest-regressions/<file>.txt` as `cc <hex>` lines and
//!   replayed first on subsequent runs (committed seed files keep
//!   regressions pinned in CI);
//! * there is **no shrinking** — the failure report prints the seed and
//!   the assertion message instead.
//!
//! `PROPTEST_CASES` overrides the per-test case count.

use std::fmt;
use std::path::PathBuf;

pub mod collection;
pub mod strategy;

pub use strategy::{any, Arbitrary, Strategy, TestRng};

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!`/`prop_filter` rejected the inputs; try other ones.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Per-test configuration (the subset upstream tests here use).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this engine has no shrinking so each
        // failure costs little, and the repo's tests run in debug CI —
        // 64 keeps tier-1 fast while still exploring broadly.
        ProptestConfig { cases: 64 }
    }
}

fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Locate `proptest-regressions/<stem>.txt` next to the test source.
///
/// `file!()` paths are relative to the workspace root while tests run
/// with the *package* root as cwd, so try the path as-is first and fall
/// back to resolving its `tests/…` suffix against the manifest dir.
fn regression_path(source_file: &str, manifest_dir: &str) -> Option<PathBuf> {
    let src = PathBuf::from(source_file);
    let stem = src.file_stem()?.to_owned();
    let sibling = |base: &std::path::Path| {
        let mut p = base.to_path_buf();
        p.push("proptest-regressions");
        p.push(&stem);
        p.set_extension("txt");
        p
    };
    if let Some(parent) = src.parent() {
        let direct = sibling(parent);
        if direct.parent().is_some_and(std::path::Path::exists) {
            return Some(direct);
        }
    }
    // Resolve ".../tests/foo.rs" under the manifest dir.
    let comps: Vec<&str> = source_file.split('/').collect();
    let tests_at = comps.iter().rposition(|c| *c == "tests")?;
    let mut p = PathBuf::from(manifest_dir);
    for c in &comps[tests_at..comps.len() - 1] {
        p.push(c);
    }
    Some(sibling(&p))
}

fn load_seeds(path: &std::path::Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let line = line.split('#').next()?.trim();
            let hex = line.strip_prefix("cc ")?.trim();
            u64::from_str_radix(hex, 16).ok()
        })
        .collect()
}

fn persist_seed(path: &std::path::Path, test_name: &str, seed: u64) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut text = std::fs::read_to_string(path).unwrap_or_else(|_| {
        "# Seeds for failure cases found by the vendored proptest stand-in.\n\
         # Each line is `cc <hex seed>`; committed lines are replayed first\n\
         # on every run. This file is safe to commit.\n"
            .to_owned()
    });
    text.push_str(&format!("cc {seed:016x} # {test_name}\n"));
    let _ = std::fs::write(path, text);
}

/// Drive one property test. Called by the [`proptest!`] expansion; not
/// part of the public API contract.
///
/// # Panics
///
/// Panics (failing the surrounding `#[test]`) when a case fails or when
/// too many inputs are rejected.
pub fn run_proptest<S: Strategy>(
    source_file: &str,
    manifest_dir: &str,
    test_name: &str,
    config: &ProptestConfig,
    strat: &S,
    f: &mut dyn FnMut(S::Value) -> Result<(), TestCaseError>,
) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases);
    let base = fnv64(source_file.as_bytes()) ^ fnv64(test_name.as_bytes()).rotate_left(17);
    let reg_path = regression_path(source_file, manifest_dir);

    let mut run_seed = |seed: u64, persist: bool| {
        let mut rng = TestRng::new(seed);
        let Some(input) = strat.generate(&mut rng) else {
            return true; // generation rejected; does not consume a case
        };
        match f(input) {
            Ok(()) => false,
            Err(TestCaseError::Reject(_)) => true,
            Err(TestCaseError::Fail(msg)) => {
                if persist {
                    if let Some(p) = &reg_path {
                        persist_seed(p, test_name, seed);
                    }
                }
                panic!(
                    "proptest stand-in: test `{test_name}` failed \
                     (seed cc {seed:016x}, replayable via \
                     {}): {msg}",
                    reg_path
                        .as_deref()
                        .map_or_else(|| "regression file".into(), |p| p.display().to_string()),
                );
            }
        }
    };

    // Replay persisted regression seeds first.
    if let Some(p) = &reg_path {
        for seed in load_seeds(p) {
            let _ = run_seed(seed, false);
        }
    }

    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = u64::from(cases) * 64;
    while accepted < cases {
        assert!(
            attempts < max_attempts,
            "proptest stand-in: test `{test_name}` rejected too many inputs \
             ({attempts} attempts for {cases} cases) — loosen the filter/assume"
        );
        let seed = base ^ attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let rejected = run_seed(seed, true);
        attempts += 1;
        if !rejected {
            accepted += 1;
        }
    }
}

/// Assert inside a property (records a case failure instead of panicking
/// mid-case, as upstream does).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_owned()));
        }
    };
}

/// Define property tests over strategies; see the crate docs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; the config expression is
/// peeled off first so it sits at repetition depth 0 here.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let strat = ($($strat,)+);
                $crate::run_proptest(
                    file!(),
                    env!("CARGO_MANIFEST_DIR"),
                    stringify!($name),
                    &config,
                    &strat,
                    &mut |($($pat,)+)| { $body Ok(()) },
                );
            }
        )*
    };
}

pub mod prelude {
    //! Everything a `use proptest::prelude::*;` test expects in scope.
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, TestCaseError,
    };
}
