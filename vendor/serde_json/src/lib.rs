//! Offline stand-in for `serde_json`: renders and parses the vendored
//! serde's [`serde::Value`] tree as standard JSON. Supports everything
//! the workspace serializes (maps, sequences, strings with escapes,
//! integers, floats, bools, null).

use serde::{Deserialize, Error, Serialize, Value};
use std::fmt::Write as _;

/// Serialize `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the supported data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the supported data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or on a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    T::from_value(&v)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) => {
            if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                let _ = write!(out, "{x:.1}");
            } else {
                let _ = write!(out, "{x}");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {} of JSON input",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_map(),
            Some(b'[') => self.parse_seq(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::msg(format!(
                "unexpected character at byte {} of JSON input",
                self.pos
            ))),
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::msg("expected `,` or `}` in JSON object")),
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::msg("expected `,` or `]` in JSON array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated JSON string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(Error::msg)?,
                                16,
                            )
                            .map_err(Error::msg)?;
                            // Surrogate pairs unsupported (BMP is enough here).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("invalid escape in JSON string")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 scalar.
                    let s = std::str::from_utf8(&self.bytes[self.pos..]).map_err(Error::msg)?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::msg)?;
        if float {
            text.parse::<f64>().map(Value::F64).map_err(Error::msg)
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::I64).map_err(Error::msg)
        } else {
            text.parse::<u64>().map(Value::U64).map_err(Error::msg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v: Vec<(u64, String)> = vec![(1, "a\"b\\c\nd".into()), (2, "π".into())];
        let json = to_string(&v).unwrap();
        let back: Vec<(u64, String)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_standard_json() {
        let v: Vec<u64> = from_str(" [1, 2,\n 3] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let b: bool = from_str("true").unwrap();
        assert!(b);
        let none: Option<u32> = from_str("null").unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = vec![vec![1u32, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("12x").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
