//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build container has no network access, so the workspace vendors
//! the exact API surface it consumes: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::random_range`] over integer
//! ranges, and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256** seeded via SplitMix64 — high-quality, deterministic, and
//! dependency-free. It is **not** the upstream `StdRng` stream: seeds
//! produce different (but equally well-distributed) sequences.

/// Core generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the subset of the upstream trait we need).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::random_range` can sample from.
pub trait SampleRange<T> {
    /// Sample a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                // Lemire-style widening multiply; the tiny modulo bias of
                // plain `% span` is irrelevant here, but this is just as
                // cheap and exact enough for simulation workloads.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u128;
                (self.start as u128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as u128) - (s as u128) + 1;
                let hi = (rng.next_u64() as u128 * span) >> 64;
                (s as u128 + hi) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A uniformly random `bool`.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Named generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for the upstream
    /// `StdRng`; same quality class, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as xoshiro recommends.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffle the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = a.random_range(0..1000);
            assert_eq!(x, b.random_range(0..1000));
            assert!(x < 1000);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }

    #[test]
    fn usize_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
